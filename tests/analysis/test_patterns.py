from repro.analysis import PatternKind, detect_module_targets, detect_target_loops
from repro.ir import F64, Function, I64, IRBuilder, Module, Reg, verify_module

from ..conftest import build_call_module, build_dot_module, build_rmw_module


class TestDetectionPositive:
    def test_reduction_loop(self, dot_module):
        targets = detect_target_loops(dot_module.get_function("main"), dot_module)
        assert len(targets) == 1
        t = targets[0]
        assert t.kind is PatternKind.REDUCTION_LOOP
        assert t.value_reg.ty.is_float
        assert not t.rmw_load_sites
        assert t.per_iter_cost >= 40

    def test_function_call(self, call_module):
        targets = detect_target_loops(call_module.get_function("main"), call_module)
        assert len(targets) == 1
        t = targets[0]
        assert t.kind is PatternKind.FUNCTION_CALL
        assert t.callee == "g"

    def test_rmw_detected(self, rmw_module):
        targets = detect_target_loops(rmw_module.get_function("main"), rmw_module)
        assert len(targets) == 1
        assert targets[0].rmw_load_sites

    def test_live_ins_are_outside_defs(self, dot_module):
        func = dot_module.get_function("main")
        (t,) = detect_target_loops(func, dot_module)
        loop_defs = {
            i.dest.name
            for l in t.loop.blocks
            for i in func.blocks[l].instrs
            if i.dest is not None
        }
        for reg in t.live_ins:
            assert reg.name not in loop_defs

    def test_module_level_helper(self, dot_module):
        per_func = detect_module_targets(dot_module)
        assert len(per_func["main"]) == 1


class TestDetectionNegative:
    def _loop_module(self, body_fn):
        m = Module("m")
        m.add_global("out", 64)
        f = Function("main", [Reg("n", I64)], F64)
        m.add_function(f)
        b = IRBuilder(f)
        op = b.mov(b.global_addr("out"), hint="op")
        with b.loop(0, f.params[0], hint="L") as i:
            body_fn(b, i, op)
        b.ret(0.0)
        verify_module(m)
        return m, f

    def test_initialization_loop_rejected(self):
        # cheap store loop: no expensive computation to predict
        m, f = self._loop_module(lambda b, i, op: b.store(0.0, b.padd(op, i)))
        assert detect_target_loops(f, m) == []

    def test_integer_store_rejected(self):
        def body(b, i, op):
            acc = b.mov(0, hint="iacc")
            with b.loop(0, 16):
                b.mov(b.add(acc, 3), dest=acc)
            b.store(acc, b.padd(op, i))

        m, f = self._loop_module(body)
        assert detect_target_loops(f, m) == []

    def test_multiple_stores_rejected(self):
        def body(b, i, op):
            acc = b.mov(0.0, hint="acc")
            with b.loop(0, 16) as j:
                b.mov(b.fadd(acc, b.sitofp(j)), dest=acc)
            b.store(acc, b.padd(op, i))
            b.store(acc, b.padd(op, b.add(i, 32)))

        m, f = self._loop_module(body)
        assert detect_target_loops(f, m) == []

    def test_cheap_call_rejected(self):
        m = Module("m")
        m.add_global("out", 64)
        tiny = Function("tiny", [Reg("x", F64)], F64)
        m.add_function(tiny)
        tb = IRBuilder(tiny)
        tb.ret(tb.fadd(tiny.params[0], 1.0))
        f = Function("main", [Reg("n", I64)], F64)
        m.add_function(f)
        b = IRBuilder(f)
        op = b.mov(b.global_addr("out"), hint="op")
        with b.loop(0, f.params[0]) as i:
            v = b.call("tiny", [b.sitofp(i)])
            b.store(v, b.padd(op, i))
        b.ret(0.0)
        verify_module(m)
        assert detect_target_loops(f, m) == []


class TestClassification:
    def test_nested_reduction(self):
        m = Module("m")
        m.add_global("out", 64)
        f = Function("main", [Reg("n", I64)], F64)
        m.add_function(f)
        b = IRBuilder(f)
        op = b.mov(b.global_addr("out"), hint="op")
        with b.loop(0, f.params[0], hint="T") as i:
            acc = b.mov(0.0, hint="acc")
            with b.loop(0, 6):
                with b.loop(0, 6):
                    b.mov(b.fadd(acc, 1.5), dest=acc)
            b.store(acc, b.padd(op, i))
        b.ret(0.0)
        (t,) = detect_target_loops(f, m)
        assert t.kind is PatternKind.NESTED_REDUCTION

    def test_varying_trip_count(self):
        m = Module("m")
        m.add_global("out", 256)
        f = Function("main", [Reg("n", I64)], F64)
        m.add_function(f)
        b = IRBuilder(f)
        op = b.mov(b.global_addr("out"), hint="op")
        with b.loop(0, f.params[0], hint="outer") as i:
            with b.loop(0, f.params[0], hint="mid") as j:
                acc = b.mov(0.0, hint="acc")
                with b.loop(0, i, hint="red") as k:  # bound = enclosing ivar
                    b.mov(b.fadd(acc, b.sitofp(k)), dest=acc)
                b.store(acc, b.padd(op, b.add(b.mul(i, f.params[0]), j)))
        b.ret(0.0)
        verify_module(m)
        targets = detect_target_loops(f, m)
        assert len(targets) == 1
        assert targets[0].kind is PatternKind.REDUCTION_VARYING

    def test_location_flag(self, dot_module, call_module):
        (t1,) = detect_target_loops(dot_module.get_function("main"), dot_module)
        assert not t1.inside_outer_loop  # the dot loop is top level
        (t2,) = detect_target_loops(call_module.get_function("main"), call_module)
        assert not t2.inside_outer_loop

    def test_conditional_classification(self):
        from repro.ir import CmpPred

        m = Module("m")
        m.add_global("x", 64)
        m.add_global("out", 64)
        f = Function("main", [Reg("n", I64)], F64)
        m.add_function(f)
        b = IRBuilder(f)
        xp = b.mov(b.global_addr("x"), hint="xp")
        op = b.mov(b.global_addr("out"), hint="op")
        with b.loop(0, f.params[0], hint="T") as i:
            acc = b.mov(0.0, hint="acc")
            with b.loop(0, 16, hint="red") as j:
                v = b.load(b.padd(xp, j))
                big = b.fcmp(CmpPred.GT, v, 0.5)
                b.if_then_else(big, lambda bb, acc=acc, v=v: bb.mov(bb.fadd(acc, v), dest=acc))
            b.store(acc, b.padd(op, i))
        b.ret(0.0)
        verify_module(m)
        (t,) = detect_target_loops(f, m)
        assert t.kind is PatternKind.NESTED_REDUCTION_COND
