from repro.analysis import (
    CFG,
    Liveness,
    compute_chains,
    compute_slice,
    defining_instr,
)
from repro.ir import CmpPred, F64, Function, I64, IRBuilder, Module, Opcode, Reg

from ..conftest import build_dot_module


def straightline():
    m = Module("m")
    f = Function("main", [Reg("p", I64)], F64)
    m.add_function(f)
    b = IRBuilder(f)
    a = b.load(f.params[0], hint="a")
    c = b.fmul(a, 2.0)
    d = b.fadd(c, a)
    dead = b.fmul(a, 3.0)  # never used
    b.store(d, f.params[0])
    b.ret(d)
    return f, (a, c, d, dead)


class TestChains:
    def test_def_and_use_sites(self):
        f, (a, c, d, dead) = straightline()
        chains = compute_chains(f)
        assert len(chains.def_sites(a.name)) == 1
        assert len(chains.use_sites(a.name)) == 3  # c, d, dead
        assert chains.single_def(c.name) is not None

    def test_multi_def_register(self, dot_module):
        f = dot_module.get_function("main")
        chains = compute_chains(f)
        accs = [n for n in chains.defs if n.startswith("acc")]
        assert accs
        # the accumulator is written at init and in the loop body
        assert len(chains.def_sites(accs[0])) >= 2
        assert chains.single_def(accs[0]) is None

    def test_dead_detection(self):
        f, (a, c, d, dead) = straightline()
        chains = compute_chains(f)
        assert chains.is_dead(dead.name)
        assert not chains.is_dead(d.name)

    def test_defining_instr(self):
        f, (a, c, d, dead) = straightline()
        chains = compute_chains(f)
        site = chains.single_def(c.name)
        assert defining_instr(f, site).op is Opcode.FMUL


class TestSlice:
    def test_slice_contains_transitive_deps(self):
        f, (a, c, d, dead) = straightline()
        sites = compute_slice(f, d)
        ops = [defining_instr(f, s).op for s in sites]
        assert Opcode.LOAD in ops and Opcode.FMUL in ops and Opcode.FADD in ops
        # the dead multiply is not in d's slice
        assert len([o for o in ops if o is Opcode.FMUL]) == 1

    def test_slice_respects_region(self, dot_module):
        f = dot_module.get_function("main")
        chains = compute_chains(f)
        store_site = next(
            (label, i)
            for label in f.block_order()
            for i, ins in enumerate(f.blocks[label].instrs)
            if ins.op is Opcode.STORE
        )
        value = defining_instr(f, store_site).args[0]
        inner_blocks = {l for l in f.blocks if l.startswith("inner")}
        region = inner_blocks | {store_site[0]}
        sites = compute_slice(f, value, region, chains)
        assert sites
        assert all(s[0] in region for s in sites)

    def test_slice_in_program_order(self):
        f, (a, c, d, dead) = straightline()
        sites = compute_slice(f, d)
        assert sites == sorted(sites, key=lambda s: s[1])


class TestLiveness:
    def test_dead_defs_found(self):
        f, (a, c, d, dead) = straightline()
        live = Liveness(f)
        dead_sites = live.dead_defs()
        names = {f.blocks[l].instrs[i].dest.name for l, i in dead_sites}
        assert dead.name in names
        assert d.name not in names

    def test_loop_carried_liveness(self, dot_module):
        f = dot_module.get_function("main")
        live = Liveness(f)
        head = [l for l in f.blocks if l.startswith("inner.head")][0]
        accs = {n for n in live.live_in[head] if n.startswith("acc")}
        assert accs  # the accumulator is live around the inner loop

    def test_live_at_point(self):
        f, (a, c, d, dead) = straightline()
        live = Liveness(f)
        entry = f.block_order()[0]
        # before the fadd, both a and c are live
        idx = next(i for i, ins in enumerate(f.blocks[entry].instrs) if ins.op.value == "fadd")
        at = live.live_at(entry, idx)
        assert a.name in at and c.name in at

    def test_params_live_in_entry(self):
        f, _ = straightline()
        live = Liveness(f)
        assert "p" in live.live_in[f.block_order()[0]]
