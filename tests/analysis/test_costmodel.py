from repro.analysis import (
    DEFAULT_TRIP,
    LATENCY,
    estimate_block_cost,
    estimate_function_cost,
    instr_cost,
)
from repro.ir import F64, Function, I64, IRBuilder, Instr, Module, Opcode, Reg


class TestLatencyTable:
    def test_covers_every_opcode(self):
        for op in Opcode:
            assert op in LATENCY

    def test_relative_ordering(self):
        assert LATENCY[Opcode.ADD] < LATENCY[Opcode.FMUL] < LATENCY[Opcode.FDIV]
        assert LATENCY[Opcode.EXP] > LATENCY[Opcode.FMUL]

    def test_instr_cost(self):
        add = Instr(Opcode.ADD, dest=Reg("a", I64), args=())
        assert instr_cost(add) == LATENCY[Opcode.ADD]


class TestFunctionCost:
    def build(self, loops: int):
        m = Module("m")
        f = Function("main", [Reg("n", I64)], F64)
        m.add_function(f)
        b = IRBuilder(f)
        if loops == 0:
            b.ret(b.fadd(1.0, 2.0))
        elif loops == 1:
            with b.loop(0, f.params[0]):
                b.fmul(1.0, 2.0)
            b.ret(0.0)
        else:
            with b.loop(0, f.params[0]):
                with b.loop(0, f.params[0]):
                    b.fmul(1.0, 2.0)
            b.ret(0.0)
        return m, f

    def test_loop_depth_scales_cost(self):
        _, flat = self.build(0)
        _, one = self.build(1)
        _, two = self.build(2)
        c0 = estimate_function_cost(flat)
        c1 = estimate_function_cost(one)
        c2 = estimate_function_cost(two)
        assert c0 < c1 < c2
        assert c2 > DEFAULT_TRIP * c1 / 4  # roughly a trip-count factor

    def test_call_includes_callee(self):
        m = Module("m")
        g = Function("g", [], F64)
        m.add_function(g)
        gb = IRBuilder(g)
        v = gb.mov(1.0)
        for _ in range(20):
            v = gb.exp(v)
        gb.ret(v)

        f = Function("main", [], F64)
        m.add_function(f)
        fb = IRBuilder(f)
        fb.ret(fb.call("g", []))

        without = estimate_function_cost(f)
        with_callee = estimate_function_cost(f, m)
        assert with_callee > without + 15 * 20

    def test_recursion_is_cut_off(self):
        m = Module("m")
        f = Function("main", [], F64)
        m.add_function(f)
        b = IRBuilder(f)
        b.ret(b.call("main", []))
        # must terminate and return a finite value
        assert estimate_function_cost(f, m) > 0

    def test_block_cost_unweighted(self):
        m, f = self.build(1)
        entry = f.block_order()[0]
        cost = estimate_block_cost(f, entry)
        assert 0 < cost < 100
