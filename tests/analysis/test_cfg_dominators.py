import pytest

from repro.analysis import CFG, compute_idom, dominates, dominator_tree
from repro.ir import F64, Function, I64, IRBuilder, Module, Reg, CmpPred


def diamond_func():
    """entry -> (then|else) -> join -> exit."""
    m = Module("m")
    f = Function("main", [Reg("x", I64)], F64)
    m.add_function(f)
    b = IRBuilder(f)
    out = b.mov(0.0, hint="out")
    cond = b.icmp(CmpPred.GT, f.params[0], 0)
    b.if_then_else(cond, lambda bb: bb.mov(1.0, dest=out), lambda bb: bb.mov(2.0, dest=out))
    b.ret(out)
    return f


def loop_func():
    m = Module("m")
    f = Function("main", [Reg("n", I64)], F64)
    m.add_function(f)
    b = IRBuilder(f)
    acc = b.mov(0.0, hint="acc")
    with b.loop(0, f.params[0], hint="L"):
        b.mov(b.fadd(acc, 1.0), dest=acc)
    b.ret(acc)
    return f


class TestCFG:
    def test_diamond_edges(self):
        f = diamond_func()
        cfg = CFG(f)
        entry = cfg.entry
        succs = cfg.succs[entry]
        assert len(succs) == 2
        merge = [l for l in f.blocks if l.startswith("if.end")][0]
        assert set(cfg.preds[merge]) == set(succs)

    def test_reachable_excludes_orphans(self):
        f = diamond_func()
        orphan = f.add_block("orphan")
        from repro.ir import Instr, Opcode
        orphan.append(Instr(Opcode.RET, args=()))
        cfg = CFG(f)
        assert "orphan" not in cfg.reachable()

    def test_postorder_ends_with_entry_in_rpo(self):
        f = diamond_func()
        cfg = CFG(f)
        rpo = cfg.reverse_postorder()
        assert rpo[0] == cfg.entry
        # every edge u->v (v != back edge) has u before v in RPO for a DAG
        pos = {l: i for i, l in enumerate(rpo)}
        for u, vs in cfg.succs.items():
            for v in vs:
                if pos[v] > pos[u] or v == cfg.entry:
                    continue
                # the only violations allowed are loop back edges
                assert any(v in l for l in (u,)) or True

    def test_back_edges_on_loop(self):
        f = loop_func()
        cfg = CFG(f)
        idom = compute_idom(cfg)
        edges = cfg.back_edges(idom)
        assert len(edges) == 1
        tail, head = edges[0]
        assert head.startswith("L.head")
        assert tail.startswith("L.latch")


class TestDominators:
    def test_diamond_idom(self):
        f = diamond_func()
        cfg = CFG(f)
        idom = compute_idom(cfg)
        entry = cfg.entry
        merge = [l for l in f.blocks if l.startswith("if.end")][0]
        assert idom[entry] == entry
        assert idom[merge] == entry  # neither arm dominates the join

    def test_dominates_reflexive_and_entry(self):
        f = loop_func()
        cfg = CFG(f)
        idom = compute_idom(cfg)
        for label in idom:
            assert dominates(idom, label, label)
            assert dominates(idom, cfg.entry, label)

    def test_loop_header_dominates_body(self):
        f = loop_func()
        cfg = CFG(f)
        idom = compute_idom(cfg)
        head = [l for l in f.blocks if l.startswith("L.head")][0]
        body = [l for l in f.blocks if l.startswith("L.body")][0]
        assert dominates(idom, head, body)
        assert not dominates(idom, body, head)

    def test_dominator_tree_children(self):
        f = diamond_func()
        cfg = CFG(f)
        idom = compute_idom(cfg)
        tree = dominator_tree(idom)
        assert set(tree[cfg.entry]) == {l for l in idom if l != cfg.entry and idom[l] == cfg.entry}
