from repro.analysis import CFG, find_induction, find_loops, loop_depth_map
from repro.ir import Const, F64, Function, I64, IRBuilder, Module, Reg

from ..conftest import build_dot_module


def nested_loops_func():
    m = Module("m")
    f = Function("main", [Reg("n", I64)], F64)
    m.add_function(f)
    b = IRBuilder(f)
    with b.loop(0, f.params[0], hint="A"):
        with b.loop(0, 8, hint="B"):
            pass
        with b.loop(2, f.params[0], step=2, hint="C"):
            pass
    b.ret(0.0)
    return f


class TestFindLoops:
    def test_counts_and_nesting(self):
        f = nested_loops_func()
        loops = find_loops(f)
        assert len(loops) == 3
        outer = [l for l in loops if l.header.startswith("A.head")][0]
        inner_b = [l for l in loops if l.header.startswith("B.head")][0]
        inner_c = [l for l in loops if l.header.startswith("C.head")][0]
        assert outer.depth == 1
        assert inner_b.depth == 2 and inner_b.parent is outer
        assert inner_c.depth == 2 and inner_c.parent is outer
        assert set(outer.children) == {inner_b, inner_c}

    def test_blocks_contain_header_and_latch(self):
        f = nested_loops_func()
        loops = find_loops(f)
        outer = [l for l in loops if l.header.startswith("A.head")][0]
        assert outer.header in outer.blocks
        for latch in outer.latches:
            assert latch in outer.blocks

    def test_exits(self):
        f = nested_loops_func()
        cfg = CFG(f)
        loops = find_loops(f, cfg)
        inner_b = [l for l in loops if l.header.startswith("B.head")][0]
        exits = inner_b.exits(cfg)
        assert len(exits) == 1
        inside, outside = exits[0]
        assert inside == inner_b.header
        assert outside not in inner_b.blocks

    def test_depth_map(self):
        f = nested_loops_func()
        loops = find_loops(f)
        depth = loop_depth_map(loops)
        inner_b = [l for l in loops if l.header.startswith("B.head")][0]
        for label in inner_b.blocks:
            assert depth[label] == 2

    def test_no_loops_in_straightline(self):
        m = Module("m")
        f = Function("main", [], F64)
        m.add_function(f)
        b = IRBuilder(f)
        b.ret(b.fadd(1.0, 2.0))
        assert find_loops(f) == []


class TestInduction:
    def test_canonical_shape(self):
        f = nested_loops_func()
        cfg = CFG(f)
        loops = find_loops(f, cfg)
        outer = [l for l in loops if l.header.startswith("A.head")][0]
        ind = find_induction(f, outer, cfg)
        assert ind is not None
        assert isinstance(ind.start, Const) and ind.start.value == 0
        assert ind.bound.name == "n"
        assert isinstance(ind.step, Const) and ind.step.value == 1

    def test_nonunit_step_and_start(self):
        f = nested_loops_func()
        cfg = CFG(f)
        loops = find_loops(f, cfg)
        inner_c = [l for l in loops if l.header.startswith("C.head")][0]
        ind = find_induction(f, inner_c, cfg)
        assert ind is not None
        assert ind.start.value == 2
        assert ind.step.value == 2

    def test_irregular_loop_returns_none(self):
        # while-style loop with a float condition register is not canonical
        from repro.ir import CmpPred, Instr, Opcode, f64

        m = Module("m")
        f = Function("main", [], F64)
        m.add_function(f)
        b = IRBuilder(f)
        head = b.new_block("head")
        body = b.new_block("body")
        done = b.new_block("done")
        x = b.mov(0.0, hint="x")
        b.br(head)
        b.at_end(head)
        c = b.fcmp(CmpPred.LT, x, 10.0)
        b.cbr(c, body, done)
        b.at_end(body)
        b.mov(b.fadd(x, 1.0), dest=x)
        b.br(head)
        b.at_end(done)
        b.ret(x)
        cfg = CFG(f)
        loops = find_loops(f, cfg)
        assert len(loops) == 1
        assert find_induction(f, loops[0], cfg) is None

    def test_dot_module_inductions(self):
        f = build_dot_module().get_function("main")
        cfg = CFG(f)
        for loop in find_loops(f, cfg):
            assert find_induction(f, loop, cfg) is not None
