from repro.analysis import build_callgraph
from repro.ir import F64, Function, IRBuilder, Module, Reg

from ..conftest import build_call_module


def chain_module():
    """main -> a -> b, main -> b, c is isolated, r is self-recursive."""
    m = Module("m")

    def make(name, calls):
        f = Function(name, [], F64)
        m.add_function(f)
        b = IRBuilder(f)
        acc = b.mov(0.0)
        for callee in calls:
            v = b.call(callee, [])
            acc = b.fadd(acc, v)
        b.ret(acc)

    make("b", [])
    make("a", ["b"])
    make("main", ["a", "b"])
    make("c", [])
    make("r", ["r"])
    return m


class TestCallGraph:
    def test_edges(self):
        graph = build_callgraph(chain_module())
        assert graph.callees["main"] == {"a", "b"}
        assert graph.callers["b"] == {"a", "main"}
        assert graph.callees["c"] == set()

    def test_reachable(self):
        graph = build_callgraph(chain_module())
        assert graph.reachable_from("main") == {"main", "a", "b"}
        assert graph.reachable_from("c") == {"c"}

    def test_recursion_detection(self):
        graph = build_callgraph(chain_module())
        assert graph.is_recursive("r")
        assert not graph.is_recursive("main")
        assert not graph.is_recursive("b")

    def test_bottom_up_order(self):
        graph = build_callgraph(chain_module())
        order = graph.bottom_up_order()
        assert order.index("b") < order.index("a") < order.index("main")
        assert set(order) == {"main", "a", "b", "c", "r"}

    def test_on_real_workload(self, call_module):
        graph = build_callgraph(call_module)
        assert graph.callees["main"] == {"g"}
        assert "main" in graph.reachable_from("main")

    def test_unknown_callees_ignored(self):
        m = Module("m")
        f = Function("main", [], F64)
        m.add_function(f)
        b = IRBuilder(f)
        b.call("extern", [])  # not defined in the module
        b.ret(0.0)
        graph = build_callgraph(m)
        assert graph.callees["main"] == set()
