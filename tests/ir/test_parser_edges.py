"""Parser edge cases the generator emits, and ParseError diagnostics."""
import pytest

from repro.ir.parser import ParseError, parse_module
from repro.ir.printer import format_module
from repro.ir.values import Const


def _roundtrip(text: str):
    module = parse_module(text)
    assert format_module(parse_module(format_module(module))) == format_module(module)
    return module


def test_negative_float_constants():
    module = _roundtrip(
        "func @main() -> f64 {\nentry:\n  %x = mov -1.5:f64\n  ret %x\n}\n"
    )
    instr = next(module.functions["main"].instructions())
    assert isinstance(instr.args[0], Const) and instr.args[0].value == -1.5


def test_scientific_notation_constants():
    module = _roundtrip(
        "func @main() -> f64 {\nentry:\n  %x = mov 5e-05:f64\n"
        "  %y = fadd %x, -2.5e3:f64\n  ret %y\n}\n"
    )
    instrs = list(module.functions["main"].instructions())
    assert instrs[0].args[0].value == 5e-05
    assert instrs[1].args[1].value == -2500.0


def test_dotted_identifiers():
    """Shadow registers (%acc.sw1), clone suffixes (@main.ck) and block
    labels (outer.head.1) all carry dots."""
    module = _roundtrip(
        "func @main.ck() -> f64 {\n"
        "entry.0:\n  %acc.sw1 = mov 0.5:f64\n  br exit.block.9\n"
        "exit.block.9:\n  ret %acc.sw1\n}\n"
    )
    func = module.functions["main.ck"]
    assert func.block_order() == ["entry.0", "exit.block.9"]
    assert next(func.instructions()).dest.name == "acc.sw1"


def test_empty_arg_calls():
    module = _roundtrip(
        "func @leaf() -> f64 {\nentry:\n  ret 1.0:f64\n}\n"
        "func @main() -> f64 {\nentry:\n  %v = call @leaf() : f64\n  ret %v\n}\n"
    )
    call = next(module.functions["main"].instructions())
    assert call.callee == "leaf" and call.args == ()


def test_parse_error_carries_line_text():
    bad = "func @main() -> f64 {\nentry:\n  %x = frobnicate 1.0:f64\n  ret %x\n}\n"
    with pytest.raises(ParseError) as excinfo:
        parse_module(bad)
    err = excinfo.value
    assert err.lineno == 3
    assert err.line == "%x = frobnicate 1.0:f64"
    assert err.message.startswith("unknown opcode")
    assert "line 3:" in str(err)
    assert "%x = frobnicate 1.0:f64" in str(err)


def test_parse_error_line_text_on_undefined_register():
    bad = "func @main() -> f64 {\nentry:\n  ret %ghost\n}\n"
    with pytest.raises(ParseError) as excinfo:
        parse_module(bad)
    assert excinfo.value.line == "ret %ghost"
    assert "undefined register" in excinfo.value.message


def test_parse_error_on_unterminated_function():
    with pytest.raises(ParseError) as excinfo:
        parse_module("func @main() -> f64 {\nentry:\n  ret 0.0:f64\n")
    assert "unterminated function" in excinfo.value.message
    assert excinfo.value.line == "ret 0.0:f64"


def test_parse_error_on_statement_outside_function():
    with pytest.raises(ParseError) as excinfo:
        parse_module("ret 0.0:f64\n")
    assert excinfo.value.lineno == 1
    assert excinfo.value.line == "ret 0.0:f64"
