import pytest

from repro.ir import (
    CmpPred,
    Const,
    F64,
    Function,
    I64,
    Instr,
    IRBuilder,
    Module,
    Opcode,
    Reg,
    VerificationError,
    VOID,
    f64,
    i64,
    verify_function,
    verify_module,
)
from repro.ir.values import GlobalAddr


def empty_main(ret=F64):
    m = Module("m")
    f = Function("main", [Reg("n", I64)], ret)
    m.add_function(f)
    return m, f


def assert_error(module, pattern):
    with pytest.raises(VerificationError, match=pattern):
        verify_module(module)


class TestStructure:
    def test_function_without_blocks(self):
        m, f = empty_main()
        assert_error(m, "no blocks")

    def test_empty_block(self):
        m, f = empty_main()
        f.add_block("entry")
        assert_error(m, "empty block")

    def test_missing_terminator(self):
        m, f = empty_main()
        f.add_block("entry").append(Instr(Opcode.MOV, dest=Reg("a", I64), args=(i64(1),)))
        assert_error(m, "does not end in a terminator")

    def test_terminator_mid_block(self):
        m, f = empty_main()
        block = f.add_block("entry")
        block.append(Instr(Opcode.RET, args=(f64(0.0),)))
        block.append(Instr(Opcode.RET, args=(f64(0.0),)))
        assert_error(m, "mid-block")

    def test_branch_to_unknown_block(self):
        m, f = empty_main()
        f.add_block("entry").append(Instr(Opcode.BR, labels=("nowhere",)))
        assert_error(m, "unknown block")

    def test_ret_type_mismatches(self):
        m, f = empty_main(VOID)
        f.add_block("entry").append(Instr(Opcode.RET, args=(f64(1.0),)))
        assert_error(m, "void function returns")

        m2, f2 = empty_main(F64)
        f2.add_block("entry").append(Instr(Opcode.RET))
        assert_error(m2, "missing return value")


class TestTypes:
    def test_integer_op_on_float(self):
        m, f = empty_main()
        block = f.add_block("entry")
        block.append(Instr(Opcode.ADD, dest=Reg("a", I64), args=(f64(1.0), i64(2))))
        block.append(Instr(Opcode.RET, args=(f64(0.0),)))
        assert_error(m, "integer op on f64")

    def test_float_op_on_int(self):
        m, f = empty_main()
        block = f.add_block("entry")
        block.append(Instr(Opcode.FADD, dest=Reg("a", F64), args=(i64(1), f64(2.0))))
        block.append(Instr(Opcode.RET, args=(f64(0.0),)))
        assert_error(m, "float op on i64")

    def test_cbr_condition_must_be_int(self):
        m, f = empty_main()
        block = f.add_block("entry")
        block.append(Instr(Opcode.CBR, args=(f64(1.0),), labels=("entry", "entry")))
        assert_error(m, "condition must be integer")

    def test_compare_without_predicate(self):
        m, f = empty_main()
        block = f.add_block("entry")
        block.append(Instr(Opcode.ICMP, dest=Reg("c", I64), args=(i64(1), i64(2))))
        block.append(Instr(Opcode.RET, args=(f64(0.0),)))
        assert_error(m, "without predicate")

    def test_select_arm_types(self):
        m, f = empty_main()
        block = f.add_block("entry")
        block.append(
            Instr(Opcode.SELECT, dest=Reg("s", F64), args=(i64(1), f64(1.0), i64(2)))
        )
        block.append(Instr(Opcode.RET, args=(f64(0.0),)))
        assert_error(m, "arm types differ")

    def test_mov_between_int_and_float(self):
        m, f = empty_main()
        block = f.add_block("entry")
        block.append(Instr(Opcode.MOV, dest=Reg("a", F64), args=(i64(1),)))
        block.append(Instr(Opcode.RET, args=(f64(0.0),)))
        assert_error(m, "mov between")

    def test_operand_count(self):
        m, f = empty_main()
        block = f.add_block("entry")
        block.append(Instr(Opcode.FADD, dest=Reg("a", F64), args=(f64(1.0),)))
        block.append(Instr(Opcode.RET, args=(f64(0.0),)))
        assert_error(m, "expected 2 operands")


class TestDataflowAndLinkage:
    def test_use_before_assignment(self):
        m, f = empty_main()
        block = f.add_block("entry")
        block.append(Instr(Opcode.ADD, dest=Reg("a", I64), args=(Reg("ghost", I64), i64(1))))
        block.append(Instr(Opcode.RET, args=(f64(0.0),)))
        assert_error(m, "used before assignment")

    def test_one_armed_definition_flagged(self):
        """A register assigned on only one CBR arm may be unassigned at the join."""
        m, f = empty_main()
        entry = f.add_block("entry")
        then = f.add_block("then")
        join = f.add_block("join")
        entry.append(Instr(Opcode.CBR, args=(f.params[0],), labels=("then", "join")))
        then.append(Instr(Opcode.MOV, dest=Reg("v", F64), args=(f64(1.0),)))
        then.append(Instr(Opcode.BR, labels=("join",)))
        join.append(Instr(Opcode.RET, args=(Reg("v", F64),)))
        assert_error(m, "used before assignment")

    def test_loop_carried_register_accepted(self, dot_module):
        verify_module(dot_module)  # conftest loops re-assign their registers

    def test_unknown_callee(self):
        m, f = empty_main()
        block = f.add_block("entry")
        block.append(Instr(Opcode.CALL, dest=Reg("r", F64), args=(), callee="ghost"))
        block.append(Instr(Opcode.RET, args=(f64(0.0),)))
        assert_error(m, "unknown function")

    def test_call_arity(self):
        m, f = empty_main()
        g = Function("g", [Reg("x", F64)], F64)
        gb = IRBuilder(g)
        gb.ret(0.0)
        m.add_function(g)
        block = f.add_block("entry")
        block.append(Instr(Opcode.CALL, dest=Reg("r", F64), args=(), callee="g"))
        block.append(Instr(Opcode.RET, args=(f64(0.0),)))
        assert_error(m, "expected 1")

    def test_unknown_global(self):
        m, f = empty_main()
        block = f.add_block("entry")
        block.append(Instr(Opcode.LOAD, dest=Reg("v", F64), args=(GlobalAddr("ghost"),)))
        block.append(Instr(Opcode.RET, args=(f64(0.0),)))
        assert_error(m, "unknown global")

    def test_verify_function_returns_error_list(self):
        m, f = empty_main()
        errors = verify_function(f, m)
        assert errors and "no blocks" in errors[0]
