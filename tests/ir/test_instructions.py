from repro.ir import (
    CmpPred,
    Const,
    F64,
    I64,
    Instr,
    Opcode,
    Reg,
    SYNC_OPCODES,
    TERMINATORS,
    i64,
)


def make_add():
    return Instr(Opcode.ADD, dest=Reg("c", I64), args=(Reg("a", I64), i64(2)))


class TestClassification:
    def test_terminators(self):
        assert Instr(Opcode.BR, labels=("x",)).is_terminator
        assert Instr(Opcode.RET).is_terminator
        assert Instr(Opcode.CBR, args=(Reg("c", I64),), labels=("a", "b")).is_terminator
        assert not make_add().is_terminator

    def test_sync_points(self):
        store = Instr(Opcode.STORE, args=(Reg("v", F64), Reg("p", I64)))
        assert store.is_sync_point
        assert Instr(Opcode.CBR, args=(Reg("c", I64),), labels=("a", "b")).is_sync_point
        assert Instr(Opcode.CALL, callee="f").is_sync_point
        assert not make_add().is_sync_point

    def test_side_effects(self):
        assert Instr(Opcode.STORE, args=(Reg("v", F64), Reg("p", I64))).has_side_effect
        assert Instr(Opcode.CALL, callee="f").has_side_effect
        assert Instr(Opcode.INTRIN, callee="rt").has_side_effect
        assert Instr(Opcode.ALLOC, dest=Reg("p", I64), args=(i64(4),)).has_side_effect
        assert not make_add().has_side_effect

    def test_terminator_set_matches_sync_set(self):
        assert Opcode.BR in TERMINATORS
        assert Opcode.STORE in SYNC_OPCODES


class TestRewriting:
    def test_uses_only_registers(self):
        instr = make_add()
        assert [r.name for r in instr.uses()] == ["a"]

    def test_rename_operands_not_dest(self):
        instr = make_add()
        renamed = instr.rename({"a": Reg("a.s", I64)})
        assert renamed.args[0].name == "a.s"
        assert renamed.args[1] == i64(2)
        assert renamed.dest.name == "c"
        # original untouched
        assert instr.args[0].name == "a"

    def test_copy_is_independent(self):
        instr = make_add()
        dup = instr.copy()
        dup.replace_uses(lambda v: Reg("z", I64) if isinstance(v, Reg) else v)
        assert instr.args[0].name == "a"
        assert dup.args[0].name == "z"

    def test_copy_preserves_pred_and_callee(self):
        cmp = Instr(Opcode.ICMP, dest=Reg("c", I64), args=(i64(1), i64(2)), pred=CmpPred.LT)
        assert cmp.copy().pred is CmpPred.LT
        call = Instr(Opcode.CALL, dest=Reg("r", F64), args=(), callee="g")
        assert call.copy().callee == "g"

    def test_repr_is_printable(self):
        assert "add" in repr(make_add())
