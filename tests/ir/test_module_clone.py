"""Structural module cloning: independence and print byte-identity."""
from repro.ir import verify_module
from repro.ir.instructions import Instr, Opcode
from repro.ir.parser import parse_module
from repro.ir.printer import format_module

TEXT = """\
module clonedemo

global @out 8 f64

func @main(%n: i64) -> f64 {
entry:
  %outp.1 = mov @out
  %acc.2 = mov 0.0:f64
  %i.3 = mov 0:i64
  br head
head:
  %cond.4 = icmp lt %i.3, %n
  cbr %cond.4, body, exit
body:
  %tofp.5 = sitofp %i.3
  %fadd.6 = fadd %acc.2, %tofp.5
  %acc.2 = mov %fadd.6
  store %fadd.6, %outp.1
  %i.next.7 = add %i.3, 1:i64
  %i.3 = mov %i.next.7
  br head
exit:
  ret %acc.2
}
"""


def test_clone_prints_byte_identically():
    module = parse_module(TEXT)
    clone = module.clone()
    assert clone is not module
    assert format_module(clone) == format_module(module)
    verify_module(clone)


def test_clone_is_structurally_independent():
    module = parse_module(TEXT)
    baseline = format_module(module)
    clone = module.clone()

    func = clone.functions["main"]
    body = func.blocks["body"]
    # drop an instruction and rewrite another on the clone only
    del body.instrs[0]
    body.instrs[0] = Instr(Opcode.MOV, dest=body.instrs[0].dest,
                           args=(func.params[0],))
    func.attrs["marker"] = True

    assert format_module(module) == baseline
    assert not module.functions["main"].attrs
    assert format_module(clone) != baseline


def test_clone_preserves_register_namespace():
    module = parse_module(TEXT)
    clone = module.clone()
    original = module.functions["main"]
    cloned = clone.functions["main"]
    # fresh registers/labels mint the same names on both copies, so
    # transforms behave identically on a clone and on the original
    assert cloned.new_reg(original.params[0].ty).name == \
        original.new_reg(original.params[0].ty).name
    assert cloned.new_label() == original.new_label()
    assert cloned.block_order() == original.block_order()
