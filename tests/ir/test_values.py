import pytest

from repro.ir import Const, F64, GlobalAddr, I64, PTR, Reg, Type, f64, i64


class TestReg:
    def test_equality_by_name(self):
        assert Reg("a", I64) == Reg("a", I64)
        assert Reg("a", I64) == Reg("a", F64)  # identity is the name
        assert Reg("a", I64) != Reg("b", I64)

    def test_hashable(self):
        assert len({Reg("a", I64), Reg("a", F64), Reg("b", I64)}) == 2

    def test_void_register_rejected(self):
        with pytest.raises(ValueError):
            Reg("a", Type.VOID)

    def test_is_reg(self):
        assert Reg("a", I64).is_reg
        assert not Reg("a", I64).is_const


class TestConst:
    def test_int_const(self):
        c = i64(5)
        assert c.value == 5 and c.ty is I64
        assert c.is_const and not c.is_reg

    def test_float_const_coerces_int(self):
        c = Const(3, F64)
        assert c.value == 3.0 and isinstance(c.value, float)

    def test_int_const_rejects_float(self):
        with pytest.raises(TypeError):
            Const(3.5, I64)

    def test_int_const_rejects_bool(self):
        with pytest.raises(TypeError):
            Const(True, I64)

    def test_equality(self):
        assert i64(5) == i64(5)
        assert i64(5) != f64(5.0)
        assert f64(1.5) == f64(1.5)

    def test_void_rejected(self):
        with pytest.raises(ValueError):
            Const(0, Type.VOID)

    def test_ptr_const(self):
        c = Const(100, PTR)
        assert c.ty.is_int


class TestGlobalAddr:
    def test_type_is_ptr(self):
        assert GlobalAddr("x").ty is PTR

    def test_equality_and_hash(self):
        assert GlobalAddr("x") == GlobalAddr("x")
        assert GlobalAddr("x") != GlobalAddr("y")
        assert len({GlobalAddr("x"), GlobalAddr("x")}) == 1

    def test_repr(self):
        assert repr(GlobalAddr("buf")) == "@buf"
