import math

import pytest

from repro.ir import (
    CmpPred,
    F64,
    Function,
    I64,
    IRBuilder,
    Module,
    Opcode,
    PTR,
    Reg,
    VOID,
    verify_module,
)
from repro.runtime import Interpreter, Memory


def run_expr(build_fn, args=(), ret=F64):
    """Build main() { ret build_fn(b) }, run it, return the value."""
    m = Module("t")
    f = Function("main", [], ret)
    m.add_function(f)
    b = IRBuilder(f)
    value = build_fn(b)
    b.ret(value)
    verify_module(m)
    return Interpreter(m).run("main", args).value


class TestArithmeticEmitters:
    def test_int_ops(self):
        assert run_expr(lambda b: b.sitofp(b.add(2, 3))) == 5.0
        assert run_expr(lambda b: b.sitofp(b.mul(4, 5))) == 20.0
        assert run_expr(lambda b: b.sitofp(b.sub(4, 9))) == -5.0
        assert run_expr(lambda b: b.sitofp(b.sdiv(17, 5))) == 3.0
        assert run_expr(lambda b: b.sitofp(b.srem(17, 5))) == 2.0

    def test_bitwise(self):
        assert run_expr(lambda b: b.sitofp(b.and_(12, 10))) == 8.0
        assert run_expr(lambda b: b.sitofp(b.or_(12, 10))) == 14.0
        assert run_expr(lambda b: b.sitofp(b.xor(12, 10))) == 6.0
        assert run_expr(lambda b: b.sitofp(b.shl(3, 4))) == 48.0
        assert run_expr(lambda b: b.sitofp(b.lshr(48, 4))) == 3.0

    def test_float_ops(self):
        assert run_expr(lambda b: b.fadd(1.5, 2.25)) == 3.75
        assert run_expr(lambda b: b.fdiv(7.0, 2.0)) == 3.5
        assert run_expr(lambda b: b.fneg(2.5)) == -2.5
        assert run_expr(lambda b: b.fabs(-2.5)) == 2.5

    def test_transcendentals(self):
        assert run_expr(lambda b: b.sqrt(16.0)) == 4.0
        assert abs(run_expr(lambda b: b.exp(1.0)) - math.e) < 1e-12
        assert abs(run_expr(lambda b: b.log(math.e))) - 1.0 < 1e-12
        assert abs(run_expr(lambda b: b.sin(0.5)) - math.sin(0.5)) < 1e-12
        assert abs(run_expr(lambda b: b.cos(0.5)) - math.cos(0.5)) < 1e-12
        assert run_expr(lambda b: b.floor(2.7)) == 2.0

    def test_conversions(self):
        assert run_expr(lambda b: b.sitofp(7)) == 7.0
        assert run_expr(lambda b: b.sitofp(b.fptosi(7.9))) == 7.0

    def test_comparisons_and_select(self):
        assert run_expr(lambda b: b.select(b.icmp(CmpPred.LT, 2, 3), 1.0, 2.0)) == 1.0
        assert run_expr(lambda b: b.select(b.fcmp(CmpPred.GE, 2.0, 3.0), 1.0, 2.0)) == 2.0

    def test_int_coercion_of_python_numbers(self):
        m = Module("t")
        f = Function("main", [], F64)
        m.add_function(f)
        b = IRBuilder(f)
        r = b.add(1, 2)
        assert r.ty is I64
        b.ret(b.sitofp(r))
        verify_module(m)


class TestMemoryEmitters:
    def test_alloc_load_store(self):
        def body(b):
            buf = b.alloc(8)
            b.store(4.25, buf)
            b.store(1.0, b.padd(buf, 1))
            return b.fadd(b.load(buf), b.load(b.padd(buf, 1)))

        assert run_expr(body) == 5.25

    def test_padd_produces_ptr(self):
        m = Module("t")
        f = Function("main", [Reg("p", PTR)], F64)
        m.add_function(f)
        b = IRBuilder(f)
        addr = b.padd(f.params[0], 3)
        assert addr.ty is PTR
        b.ret(0.0)


class TestControlHelpers:
    def test_loop_executes_correct_count(self):
        m = Module("t")
        f = Function("main", [Reg("n", I64)], F64)
        m.add_function(f)
        b = IRBuilder(f)
        count = b.mov(0.0, hint="count")
        with b.loop(0, f.params[0]):
            b.mov(b.fadd(count, 1.0), dest=count)
        b.ret(count)
        verify_module(m)
        assert Interpreter(m).run("main", [7]).value == 7.0
        assert Interpreter(m).run("main", [0]).value == 0.0

    def test_loop_with_step(self):
        m = Module("t")
        f = Function("main", [], F64)
        m.add_function(f)
        b = IRBuilder(f)
        total = b.mov(0.0, hint="tot")
        with b.loop(0, 10, step=3) as i:  # 0,3,6,9
            b.mov(b.fadd(total, b.sitofp(i)), dest=total)
        b.ret(total)
        verify_module(m)
        assert Interpreter(m).run("main", []).value == 18.0

    def test_nested_loops(self):
        m = Module("t")
        f = Function("main", [], F64)
        m.add_function(f)
        b = IRBuilder(f)
        total = b.mov(0.0, hint="tot")
        with b.loop(0, 4):
            with b.loop(0, 5):
                b.mov(b.fadd(total, 1.0), dest=total)
        b.ret(total)
        verify_module(m)
        assert Interpreter(m).run("main", []).value == 20.0

    def test_if_then_else(self):
        m = Module("t")
        f = Function("main", [Reg("x", I64)], F64)
        m.add_function(f)
        b = IRBuilder(f)
        out = b.mov(0.0, hint="out")
        cond = b.icmp(CmpPred.GT, f.params[0], 10)
        b.if_then_else(
            cond,
            lambda bb: bb.mov(1.0, dest=out),
            lambda bb: bb.mov(2.0, dest=out),
        )
        b.ret(out)
        verify_module(m)
        assert Interpreter(m).run("main", [15]).value == 1.0
        assert Interpreter(m).run("main", [5]).value == 2.0

    def test_if_without_else(self):
        m = Module("t")
        f = Function("main", [Reg("x", I64)], F64)
        m.add_function(f)
        b = IRBuilder(f)
        out = b.mov(3.0, hint="out")
        cond = b.icmp(CmpPred.EQ, f.params[0], 1)
        b.if_then_else(cond, lambda bb: bb.mov(9.0, dest=out))
        b.ret(out)
        verify_module(m)
        assert Interpreter(m).run("main", [1]).value == 9.0
        assert Interpreter(m).run("main", [0]).value == 3.0

    def test_void_call(self):
        m = Module("t")
        g = Function("g", [], VOID)
        m.add_function(g)
        gb = IRBuilder(g)
        gb.ret()
        f = Function("main", [], F64)
        m.add_function(f)
        b = IRBuilder(f)
        assert b.call("g", [], ret_ty=VOID) is None
        b.ret(0.0)
        verify_module(m)
        assert Interpreter(m).run("main", []).value == 0.0
