import pytest

from repro.ir import (
    ParseError,
    format_module,
    parse_module,
    verify_module,
)
from repro.runtime import Interpreter

from ..conftest import build_call_module, build_dot_module, build_rmw_module, seed_memory


class TestRoundTrip:
    @pytest.mark.parametrize("builder", [build_dot_module, build_call_module, build_rmw_module])
    def test_print_parse_print_fixpoint(self, builder):
        module = builder()
        text = format_module(module)
        reparsed = parse_module(text)
        verify_module(reparsed)
        assert format_module(reparsed) == text

    def test_reparsed_module_runs_identically(self):
        module = build_dot_module()
        reparsed = parse_module(format_module(module))
        mem1 = seed_memory(module)
        mem2 = seed_memory(reparsed)
        r1 = Interpreter(module, memory=mem1).run("main", [8, 8])
        r2 = Interpreter(reparsed, memory=mem2).run("main", [8, 8])
        assert r1.steps == r2.steps
        assert mem1.read_global("out", 8) == mem2.read_global("out", 8)

    def test_globals_with_initializers(self):
        src = (
            "module g\n"
            "global @t 4 f64 = [1.0, 2.5]\n"
            "func @main() -> f64 {\n"
            "entry:\n"
            "  %a = load @t : f64\n"
            "  ret %a\n"
            "}\n"
        )
        module = parse_module(src)
        assert module.globals["t"].init == [1.0, 2.5]
        assert Interpreter(module).run("main", []).value == 1.0


class TestParserDetails:
    def test_comments_and_blank_lines(self):
        src = (
            "module m\n\n"
            "; a comment\n"
            "func @main() -> i64 {\n"
            "entry:  ; trailing comment\n"
            "  %a = mov 3:i64\n"
            "  ret %a\n"
            "}\n"
        )
        module = parse_module(src)
        assert Interpreter(module).run("main", []).value == 3

    def test_undefined_register_use(self):
        src = "func @main() -> i64 {\nentry:\n  ret %x\n}\n"
        with pytest.raises(ParseError, match="undefined register"):
            parse_module(src)

    def test_unknown_opcode(self):
        src = "func @main() -> i64 {\nentry:\n  %a = bogus 1:i64\n  ret %a\n}\n"
        with pytest.raises(ParseError, match="unknown opcode"):
            parse_module(src)

    def test_unterminated_function(self):
        src = "func @main() -> i64 {\nentry:\n  ret 0:i64\n"
        with pytest.raises(ParseError, match="unterminated"):
            parse_module(src)

    def test_instruction_before_label(self):
        src = "func @main() -> i64 {\n  ret 0:i64\n}\n"
        with pytest.raises(ParseError, match="before any block label"):
            parse_module(src)

    def test_statement_outside_function(self):
        with pytest.raises(ParseError, match="outside function"):
            parse_module("ret 0:i64\n")

    def test_register_type_conflict(self):
        src = (
            "func @main() -> i64 {\n"
            "entry:\n"
            "  %a = mov 1:i64\n"
            "  %a = fadd 1.0:f64, 2.0:f64\n"
            "  ret 0:i64\n"
            "}\n"
        )
        with pytest.raises(ParseError, match="redefined with type"):
            parse_module(src)

    def test_call_needs_result_type(self):
        src = (
            "func @main() -> i64 {\n"
            "entry:\n"
            "  %a = call @g()\n"
            "  ret %a\n"
            "}\n"
        )
        with pytest.raises(ParseError, match="needs a result type"):
            parse_module(src)

    def test_pointer_arith_type_inference(self):
        src = (
            "func @main(%p: ptr) -> i64 {\n"
            "entry:\n"
            "  %q = add %p, 4:i64\n"
            "  ret 0:i64\n"
            "}\n"
        )
        module = parse_module(src)
        func = module.get_function("main")
        instr = func.entry.instrs[0]
        assert instr.dest.ty.is_pointer
