import pytest

from repro.ir import F64, I64, PTR, Type, VOID, parse_type


class TestTypeProperties:
    def test_int_like(self):
        assert I64.is_int
        assert PTR.is_int
        assert not F64.is_int

    def test_float(self):
        assert F64.is_float
        assert not I64.is_float
        assert not PTR.is_float

    def test_pointer(self):
        assert PTR.is_pointer
        assert not I64.is_pointer

    def test_void_is_neither(self):
        assert not VOID.is_int
        assert not VOID.is_float
        assert not VOID.is_pointer

    def test_str(self):
        assert str(I64) == "i64"
        assert str(F64) == "f64"
        assert str(PTR) == "ptr"
        assert str(VOID) == "void"


class TestParseType:
    @pytest.mark.parametrize("name,expected", [
        ("i64", I64), ("f64", F64), ("ptr", PTR), ("void", VOID),
    ])
    def test_roundtrip(self, name, expected):
        assert parse_type(name) is expected

    def test_unknown_raises(self):
        with pytest.raises(ValueError, match="unknown IR type"):
            parse_type("i32")

    def test_case_sensitive(self):
        with pytest.raises(ValueError):
            parse_type("I64")
