"""Fuzz the verifier: generated modules must all pass, and targeted
structural mutations must each be rejected with a distinct error."""
import pytest

from repro.difftest import generate
from repro.difftest.oracles import module_copy
from repro.ir.instructions import Instr, Opcode
from repro.ir.types import F64, I64
from repro.ir.values import Const, Reg
from repro.ir.verifier import VerificationError, verify_module

pytestmark = pytest.mark.difftest


def test_fifty_generated_modules_verify():
    for index in range(50):
        verify_module(generate(3, index).module)  # raises on failure


def _main_entry(module):
    func = module.functions["main"]
    return func, func.blocks[func.block_order()[0]]


def test_dropped_terminator_rejected():
    module = module_copy(generate(3, 0).module)
    _, entry = _main_entry(module)
    del entry.instrs[-1]
    with pytest.raises(VerificationError, match="does not end in a terminator"):
        verify_module(module)


def test_undefined_register_rejected():
    module = module_copy(generate(3, 0).module)
    _, entry = _main_entry(module)
    ghost = Instr(Opcode.FADD, dest=Reg("g.1", F64),
                  args=(Reg("ghost", F64), Const(1.0, F64)))
    entry.instrs.insert(len(entry.instrs) - 1, ghost)
    with pytest.raises(VerificationError,
                       match="%ghost may be used before assignment"):
        verify_module(module)


def test_type_mismatch_rejected():
    module = module_copy(generate(3, 0).module)
    func, entry = _main_entry(module)
    bad = Instr(Opcode.FADD, dest=func.new_reg(F64, "bad"),
                args=(Const(1, I64), Const(2, I64)))
    entry.instrs.insert(0, bad)
    with pytest.raises(VerificationError, match="float op on i64 operand"):
        verify_module(module)


def test_mutations_raise_distinct_errors():
    """Apply all three mutations to fresh copies; the collected messages
    must be pairwise distinguishable."""
    base = generate(3, 0).module
    messages = []

    module = module_copy(base)
    _, entry = _main_entry(module)
    del entry.instrs[-1]
    messages.append(_failure_of(module))

    module = module_copy(base)
    _, entry = _main_entry(module)
    entry.instrs.insert(
        len(entry.instrs) - 1,
        Instr(Opcode.FADD, dest=Reg("g.1", F64),
              args=(Reg("ghost", F64), Const(1.0, F64))),
    )
    messages.append(_failure_of(module))

    module = module_copy(base)
    func, entry = _main_entry(module)
    entry.instrs.insert(0, Instr(Opcode.FADD, dest=func.new_reg(F64, "bad"),
                                 args=(Const(1, I64), Const(2, I64))))
    messages.append(_failure_of(module))

    needles = ("does not end in a terminator", "used before assignment",
               "float op on i64 operand")
    for message, needle in zip(messages, needles):
        assert needle in message
        for other in needles:
            if other != needle:
                assert other not in message


def _failure_of(module) -> str:
    with pytest.raises(VerificationError) as excinfo:
        verify_module(module)
    return str(excinfo.value)
