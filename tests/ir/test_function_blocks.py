import pytest

from repro.ir import (
    BasicBlock,
    F64,
    Function,
    I64,
    Instr,
    Module,
    Opcode,
    Reg,
    i64,
)


def make_func():
    return Function("f", [Reg("n", I64)], F64)


class TestBasicBlock:
    def test_terminator_detection(self):
        block = BasicBlock("entry")
        assert block.terminator is None
        block.append(Instr(Opcode.MOV, dest=Reg("a", I64), args=(i64(1),)))
        assert block.terminator is None
        block.append(Instr(Opcode.BR, labels=("next",)))
        assert block.terminator is not None

    def test_successors(self):
        block = BasicBlock("b")
        block.append(Instr(Opcode.CBR, args=(Reg("c", I64),), labels=("t", "f")))
        assert block.successors() == ["t", "f"]
        ret = BasicBlock("r")
        ret.append(Instr(Opcode.RET))
        assert ret.successors() == []

    def test_body_excludes_terminator(self):
        block = BasicBlock("b")
        block.append(Instr(Opcode.MOV, dest=Reg("a", I64), args=(i64(1),)))
        block.append(Instr(Opcode.BR, labels=("x",)))
        assert len(block.body()) == 1
        assert len(block) == 2


class TestFunction:
    def test_duplicate_label_rejected(self):
        f = make_func()
        f.add_block("entry")
        with pytest.raises(ValueError, match="duplicate block"):
            f.add_block("entry")

    def test_new_reg_unique(self):
        f = make_func()
        names = {f.new_reg(I64).name for _ in range(100)}
        assert len(names) == 100

    def test_new_label_avoids_collisions(self):
        f = make_func()
        f.add_block("bb.1")
        label = f.new_label("bb")
        assert label != "bb.1"
        f.add_block(label)

    def test_entry_is_first_block(self):
        f = make_func()
        f.add_block("start")
        f.add_block("other")
        assert f.entry.label == "start"

    def test_entry_on_empty_raises(self):
        with pytest.raises(ValueError):
            _ = make_func().entry

    def test_defined_regs_include_params(self):
        f = make_func()
        block = f.add_block("entry")
        block.append(Instr(Opcode.MOV, dest=Reg("a", I64), args=(i64(1),)))
        regs = f.defined_regs()
        assert "n" in regs and "a" in regs

    def test_reorder_blocks_validates(self):
        f = make_func()
        f.add_block("a")
        f.add_block("b")
        f.reorder_blocks(["b", "a"])
        assert f.block_order() == ["b", "a"]
        with pytest.raises(ValueError):
            f.reorder_blocks(["a"])

    def test_remove_block(self):
        f = make_func()
        f.add_block("a")
        f.add_block("b")
        f.remove_block("a")
        assert f.block_order() == ["b"]

    def test_size_counts_instructions(self):
        f = make_func()
        block = f.add_block("entry")
        block.append(Instr(Opcode.RET, args=(Reg("n", I64),)))
        assert f.size() == 1


class TestModule:
    def test_duplicate_function_rejected(self):
        m = Module("m")
        m.add_function(make_func())
        with pytest.raises(ValueError):
            m.add_function(make_func())

    def test_get_function_error(self):
        with pytest.raises(KeyError, match="no function"):
            Module("m").get_function("missing")

    def test_global_validation(self):
        m = Module("m")
        with pytest.raises(ValueError):
            m.add_global("g", 0)
        m.add_global("g", 4)
        with pytest.raises(ValueError):
            m.add_global("g", 4)
        with pytest.raises(ValueError):
            m.add_global("h", 2, init=[1.0, 2.0, 3.0])

    def test_contains(self):
        m = Module("m")
        m.add_function(make_func())
        assert "f" in m
        assert "g" not in m
