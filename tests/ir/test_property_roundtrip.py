"""Property-based IR checks: random straight-line programs survive
print -> parse -> print and execute identically."""
import math

from hypothesis import given, settings, strategies as st

from repro.ir import (
    F64,
    Function,
    I64,
    IRBuilder,
    Module,
    Reg,
    format_module,
    parse_module,
    verify_module,
)
from repro.runtime import Interpreter

# (emitter name, arity, float?)
_FLOAT_BINOPS = ["fadd", "fsub", "fmul"]
_FLOAT_UNOPS = ["fneg", "fabs", "sqrt", "exp", "sin", "cos", "floor"]
_INT_BINOPS = ["add", "sub", "mul", "and_", "or_", "xor"]

op_choice = st.lists(
    st.tuples(
        st.sampled_from(_FLOAT_BINOPS + _FLOAT_UNOPS + _INT_BINOPS),
        st.integers(min_value=0, max_value=10_000),
        st.integers(min_value=0, max_value=10_000),
    ),
    min_size=1,
    max_size=40,
)


def build_random_program(ops) -> Module:
    module = Module("rand")
    func = Function("main", [Reg("seed", F64)], F64)
    module.add_function(func)
    b = IRBuilder(func)
    fvals = [func.params[0], b.mov(1.25, hint="f0")]
    ivals = [b.mov(3, hint="i0"), b.mov(7, hint="i1")]
    for name, sel1, sel2 in ops:
        if name in _FLOAT_BINOPS:
            a = fvals[sel1 % len(fvals)]
            c = fvals[sel2 % len(fvals)]
            fvals.append(getattr(b, name)(a, c))
        elif name in _FLOAT_UNOPS:
            a = fvals[sel1 % len(fvals)]
            # keep magnitudes tame so exp cannot overflow to inf chains
            a = b.fmul(a, 0.125)
            fvals.append(getattr(b, name)(a))
        else:
            a = ivals[sel1 % len(ivals)]
            c = ivals[sel2 % len(ivals)]
            ivals.append(getattr(b, name)(a, c))
    total = fvals[0]
    for v in fvals[1:]:
        total = b.fadd(total, v)
    total = b.fadd(total, b.sitofp(ivals[-1]))
    b.ret(total)
    verify_module(module)
    return module


@settings(max_examples=50, deadline=None)
@given(op_choice)
def test_roundtrip_preserves_text(ops):
    module = build_random_program(ops)
    text = format_module(module)
    reparsed = parse_module(text)
    verify_module(reparsed)
    assert format_module(reparsed) == text


@settings(max_examples=50, deadline=None)
@given(op_choice, st.floats(min_value=-4.0, max_value=4.0))
def test_roundtrip_preserves_semantics(ops, seed):
    module = build_random_program(ops)
    reparsed = parse_module(format_module(module))
    v1 = Interpreter(module).run("main", [seed]).value
    v2 = Interpreter(reparsed).run("main", [seed]).value
    assert v1 == v2 or (math.isnan(v1) and math.isnan(v2))


@settings(max_examples=30, deadline=None)
@given(op_choice, st.floats(min_value=-4.0, max_value=4.0))
def test_simplify_and_dce_preserve_semantics(ops, seed):
    from repro.transforms import run_dce_module, run_simplify_module

    module = build_random_program(ops)
    reference = Interpreter(module).run("main", [seed]).value

    run_simplify_module(module)
    run_dce_module(module)
    verify_module(module)
    optimized = Interpreter(module).run("main", [seed]).value
    assert optimized == reference or (
        math.isnan(optimized) and math.isnan(reference)
    )


@settings(max_examples=25, deadline=None)
@given(op_choice, st.floats(min_value=-4.0, max_value=4.0))
def test_swift_r_preserves_semantics_on_random_programs(ops, seed):
    from repro.transforms import apply_swift_r

    module = build_random_program(ops)
    reference = Interpreter(module).run("main", [seed]).value

    apply_swift_r(module)
    verify_module(module)
    protected = Interpreter(module).run("main", [seed]).value
    assert protected == reference or (
        math.isnan(protected) and math.isnan(reference)
    )


@settings(max_examples=25, deadline=None)
@given(op_choice, st.floats(min_value=-4.0, max_value=4.0))
def test_cse_preserves_semantics_on_random_programs(ops, seed):
    from repro.transforms import run_cse_module, run_dce_module

    module = build_random_program(ops)
    reference = Interpreter(module).run("main", [seed]).value
    removed = run_cse_module(module)
    run_dce_module(module)
    verify_module(module)
    optimized = Interpreter(module).run("main", [seed]).value
    assert optimized == reference or (
        math.isnan(optimized) and math.isnan(reference)
    )


@settings(max_examples=25, deadline=None)
@given(op_choice, st.floats(min_value=-4.0, max_value=4.0))
def test_reference_interpreter_agrees_on_random_programs(ops, seed):
    from repro.runtime import ReferenceInterpreter

    module = build_random_program(ops)
    fast = Interpreter(module).run("main", [seed])
    ref = ReferenceInterpreter(module)
    value = ref.run("main", [seed])
    assert ref.steps == fast.steps
    assert value == fast.value or (math.isnan(value) and math.isnan(fast.value))
