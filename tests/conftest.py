"""Shared fixtures: small IR programs used across the test suite."""
from __future__ import annotations

import math

import pytest

from repro.ir import (
    F64,
    I64,
    PTR,
    Function,
    IRBuilder,
    Module,
    Reg,
    verify_module,
)
from repro.runtime import Interpreter, Memory


def build_dot_module(inner: int = 16) -> Module:
    """out[i] = dot(x, y) * (i+1) — a nested-reduction target loop."""
    m = Module("dot")
    m.add_global("x", 64)
    m.add_global("y", 64)
    m.add_global("out", 64)
    f = Function("main", [Reg("n", I64), Reg("m", I64)], F64)
    m.add_function(f)
    b = IRBuilder(f)
    xp = b.mov(b.global_addr("x"), hint="xp")
    yp = b.mov(b.global_addr("y"), hint="yp")
    op = b.mov(b.global_addr("out"), hint="op")
    n, inner_n = f.params
    with b.loop(0, n, hint="outer") as i:
        acc = b.mov(0.0, hint="acc")
        with b.loop(0, inner_n, hint="inner") as j:
            xv = b.load(b.padd(xp, j))
            yv = b.load(b.padd(yp, j))
            b.mov(b.fadd(acc, b.fmul(xv, yv)), dest=acc)
        scaled = b.fmul(acc, b.sitofp(b.add(i, 1)))
        b.store(scaled, b.padd(op, i))
    b.ret(0.0)
    verify_module(m)
    return m


def build_call_module() -> Module:
    """out[i] = g(a[i], b[i]) — a function-call target loop."""
    m = Module("callmod")
    m.add_global("a", 64)
    m.add_global("b", 64)
    m.add_global("out", 64)

    g = Function("g", [Reg("x", F64), Reg("y", F64)], F64)
    m.add_function(g)
    gb = IRBuilder(g)
    x, y = g.params
    t = gb.fadd(gb.fmul(x, x), gb.fmul(y, y))
    t = gb.sqrt(t)
    t = gb.fadd(t, gb.exp(gb.fneg(gb.fmul(x, y))))
    t = gb.fadd(t, gb.log(gb.fadd(gb.fabs(x), 1.0)))
    t = gb.fmul(t, gb.fadd(gb.cos(y), 2.0))
    gb.ret(t)

    f = Function("main", [Reg("n", I64)], F64)
    m.add_function(f)
    b = IRBuilder(f)
    ap = b.mov(b.global_addr("a"), hint="ap")
    bp = b.mov(b.global_addr("b"), hint="bp")
    op = b.mov(b.global_addr("out"), hint="op")
    with b.loop(0, f.params[0], hint="call") as i:
        av = b.load(b.padd(ap, i))
        bv = b.load(b.padd(bp, i))
        v = b.call("g", [av, bv])
        b.store(v, b.padd(op, i))
    b.ret(0.0)
    verify_module(m)
    return m


def build_rmw_module() -> Module:
    """out[i] -= sum_k a[k]*w[k]  (read-modify-write target loop)."""
    m = Module("rmw")
    m.add_global("a", 64)
    m.add_global("w", 64)
    m.add_global("out", 64)
    f = Function("main", [Reg("n", I64), Reg("m", I64)], F64)
    m.add_function(f)
    b = IRBuilder(f)
    ap = b.mov(b.global_addr("a"), hint="ap")
    wp = b.mov(b.global_addr("w"), hint="wp")
    op = b.mov(b.global_addr("out"), hint="op")
    n, inner_n = f.params
    with b.loop(0, n, hint="outer") as i:
        addr = b.padd(op, i)
        s = b.load(addr, hint="s")
        with b.loop(0, inner_n, hint="inner") as k:
            av = b.load(b.padd(ap, k))
            wv = b.load(b.padd(wp, k))
            fi = b.sitofp(b.add(i, 1))
            term = b.fdiv(b.fmul(av, wv), fi)
            b.mov(b.fsub(s, term), dest=s)
        b.store(s, addr)
    b.ret(0.0)
    verify_module(m)
    return m


def seed_memory(module: Module, smooth: bool = True) -> Memory:
    """Memory with deterministic smooth test data in every global."""
    mem = Memory()
    mem.load_globals(module)
    for k, name in enumerate(module.globals):
        base = mem.global_addr(name)
        size = module.globals[name].size
        for i in range(size):
            if smooth:
                mem.cells[base + i] = 1.5 + math.sin(0.13 * i + k)
            else:
                mem.cells[base + i] = float((i * 2654435761 + k) % 97) / 10.0
    return mem


def run_main(module: Module, args, intrinsics=None, memory=None, **kwargs):
    mem = memory if memory is not None else seed_memory(module)
    interp = Interpreter(module, memory=mem, **kwargs)
    if intrinsics:
        interp.register_intrinsics(intrinsics)
    result = interp.run("main", args)
    return result, mem


@pytest.fixture
def dot_module() -> Module:
    return build_dot_module()


@pytest.fixture
def call_module() -> Module:
    return build_call_module()


@pytest.fixture
def rmw_module() -> Module:
    return build_rmw_module()
