import math
import random

import pytest

from repro.workloads.inputs import (
    clustered_values,
    diagonally_dominant_matrix,
    random_walk,
    smooth_grid,
    smooth_series,
)


class TestSmoothSeries:
    def test_length_and_finiteness(self):
        rng = random.Random(0)
        xs = smooth_series(rng, 100)
        assert len(xs) == 100
        assert all(math.isfinite(v) for v in xs)

    def test_noise_scales_roughness(self):
        def roughness(noise):
            rng = random.Random(1)
            xs = smooth_series(rng, 200, noise_rel=noise, period=80)
            return sum(abs(xs[i + 1] - xs[i]) for i in range(199))

        assert roughness(0.3) > roughness(0.0)

    def test_deterministic_given_rng(self):
        assert smooth_series(random.Random(7), 50) == smooth_series(random.Random(7), 50)


class TestRandomWalk:
    def test_respects_floor(self):
        rng = random.Random(0)
        xs = random_walk(rng, 500, start=0.2, step_rel=0.5, floor=0.1)
        assert min(xs) >= 0.1

    def test_multiplicative_steps_bounded(self):
        rng = random.Random(0)
        xs = random_walk(rng, 100, start=10.0, step_rel=0.01)
        for a, b in zip(xs, xs[1:]):
            assert abs(b / a - 1.0) <= 0.011


class TestClusteredValues:
    def test_values_near_centers(self):
        rng = random.Random(0)
        centers = (1.0, 10.0, 100.0)
        xs = clustered_values(rng, 300, centers, jitter_rel=0.01)
        for x in xs:
            assert any(abs(x / c - 1.0) <= 0.011 for c in centers)

    def test_all_centers_used(self):
        rng = random.Random(0)
        xs = clustered_values(rng, 300, (1.0, 2.0), jitter_rel=0.0)
        assert {1.0, 2.0} == set(xs)


class TestGrids:
    def test_smooth_grid_shape(self):
        rng = random.Random(0)
        cells = smooth_grid(rng, 6, 9)
        assert len(cells) == 54

    def test_diagonally_dominant(self):
        rng = random.Random(0)
        n = 12
        cells = diagonally_dominant_matrix(rng, n)
        for i in range(n):
            off = sum(abs(cells[i * n + j]) for j in range(n) if j != i)
            assert abs(cells[i * n + i]) > off


class TestRoughSeries:
    def test_trendless(self):
        import random as _random

        from repro.core import slope_changes_of
        from repro.workloads.inputs import rough_series

        rng = _random.Random(0)
        values = rough_series(rng, 200)
        changes = slope_changes_of(values)
        # hostile by construction: most slope changes are violent
        violent = sum(1 for c in changes if c > 0.5)
        assert violent > len(changes) * 0.6

    def test_signs_mixed(self):
        import random as _random

        from repro.workloads.inputs import rough_series

        rng = _random.Random(1)
        values = rough_series(rng, 300)
        assert any(v > 0 for v in values) and any(v < 0 for v in values)
