"""Every benchmark is checked against an independent numpy reference."""
import math
import random

import numpy as np
import pytest

from repro.analysis import detect_target_loops
from repro.ir import verify_module
from repro.runtime import Interpreter
from repro.workloads import ALL_WORKLOADS, WORKLOADS, get_workload


def run_workload(workload, inp):
    module = workload.build()
    memory = workload.fresh_memory(module, inp)
    Interpreter(module, memory=memory).run(workload.main, inp.args)
    return memory


def make_input(name, scale=0.5, seed=11):
    return get_workload(name).make_input(random.Random(seed), scale)


class TestGenericProperties:
    @pytest.mark.parametrize("workload", ALL_WORKLOADS, ids=lambda w: w.name)
    def test_builds_and_verifies(self, workload):
        verify_module(workload.build())

    @pytest.mark.parametrize("workload", ALL_WORKLOADS, ids=lambda w: w.name)
    def test_has_detected_target(self, workload):
        module = workload.build()
        targets = detect_target_loops(module.get_function(workload.main), module)
        assert targets, f"{workload.name} must expose a prediction target"

    @pytest.mark.parametrize("workload", ALL_WORKLOADS, ids=lambda w: w.name)
    def test_runs_clean(self, workload):
        inp = workload.make_input(random.Random(5), 0.4)
        memory = run_workload(workload, inp)
        out = memory.read_global(*inp.output)
        assert all(math.isfinite(v) for v in out)

    @pytest.mark.parametrize("workload", ALL_WORKLOADS, ids=lambda w: w.name)
    def test_training_and_test_inputs_disjoint(self, workload):
        train = workload.training_inputs(2, scale=0.4)
        test = workload.test_inputs(2, scale=0.4)
        for t in train:
            for u in test:
                assert t.arrays != u.arrays

    @pytest.mark.parametrize("workload", ALL_WORKLOADS, ids=lambda w: w.name)
    def test_scale_changes_problem_size(self, workload):
        small = workload.make_input(random.Random(1), 0.4)
        large = workload.make_input(random.Random(1), 1.0)
        assert sum(len(v) for v in large.arrays.values()) >= sum(
            len(v) for v in small.arrays.values()
        )

    def test_registry(self):
        assert len(ALL_WORKLOADS) == 9
        assert set(WORKLOADS) == {
            "conv1d", "conv2d", "sgemm", "kde", "forwardprop",
            "backprop", "blackscholes", "lud", "yolite",
        }
        with pytest.raises(KeyError):
            get_workload("nope")


class TestNumericalReferences:
    def test_conv1d(self):
        w = get_workload("conv1d")
        inp = make_input("conv1d")
        mem = run_workload(w, inp)
        n, m, frames = inp.args
        x = np.array(inp.arrays["x"])
        k = np.array(inp.arrays["krn"])
        expected = np.array([np.dot(x[i : i + m], k) for i in range(n)])
        got = np.array(mem.read_global("out", n))
        np.testing.assert_allclose(got, expected, rtol=1e-12)

    def test_conv2d_sparse(self):
        w = get_workload("conv2d")
        inp = make_input("conv2d")
        mem = run_workload(w, inp)
        h, wdt, k, thresh = inp.args
        img = np.array(inp.arrays["img"]).reshape(h, wdt)
        krn = np.array(inp.arrays["krn"]).reshape(k, k)
        krn_masked = np.where(np.abs(krn) > thresh, krn, 0.0)
        oh, ow = h - k + 1, wdt - k + 1
        expected = np.zeros((oh, ow))
        for y in range(oh):
            for x in range(ow):
                expected[y, x] = np.sum(img[y : y + k, x : x + k] * krn_masked)
        got = np.array(mem.read_global("out", oh * ow)).reshape(oh, ow)
        np.testing.assert_allclose(got, expected, rtol=1e-9)

    def test_sgemm(self):
        w = get_workload("sgemm")
        inp = make_input("sgemm")
        mem = run_workload(w, inp)
        n = inp.args[0]
        a = np.array(inp.arrays["a"]).reshape(n, n)
        b = np.array(inp.arrays["b"]).reshape(n, n)
        got = np.array(mem.read_global("c", n * n)).reshape(n, n)
        np.testing.assert_allclose(got, a @ b, rtol=1e-9)

    def test_kde(self):
        w = get_workload("kde")
        inp = make_input("kde")
        mem = run_workload(w, inp)
        g, s, d, inv2h2, norm, reps = inp.args
        grid = np.array(inp.arrays["grid"]).reshape(-1, d)[:g]
        samp = np.array(inp.arrays["samp"]).reshape(-1, d)[:s]
        expected = np.array([
            norm * np.sum(np.exp(-np.sum((gp - samp) ** 2, axis=1) * inv2h2))
            for gp in grid
        ])
        got = np.array(mem.read_global("out", g))
        np.testing.assert_allclose(got, expected, rtol=1e-9)

    def test_forwardprop(self):
        w = get_workload("forwardprop")
        inp = make_input("forwardprop")
        mem = run_workload(w, inp)
        nin, nout = inp.args
        x = np.array(inp.arrays["inp"])[:nin]
        wm = np.array(inp.arrays["w"]).reshape(nin, nout)
        bias = np.array(inp.arrays["bias"])[:nout]
        z = x @ wm + bias
        expected = 1.0 / (1.0 + np.exp(-z))
        got = np.array(mem.read_global("out", nout))
        np.testing.assert_allclose(got, expected, rtol=1e-12)

    def test_backprop(self):
        w = get_workload("backprop")
        inp = make_input("backprop")
        mem = run_workload(w, inp)
        nhid, nout = inp.args
        wm = np.array(inp.arrays["w"]).reshape(nhid, nout)
        delta = np.array(inp.arrays["delta"])[:nout]
        h = np.array(inp.arrays["hidden"])[:nhid]
        expected = h * (1 - h) * (wm @ delta)
        got = np.array(mem.read_global("dh", nhid))
        np.testing.assert_allclose(got, expected, rtol=1e-12)

    def test_blackscholes_against_closed_form(self):
        w = get_workload("blackscholes")
        inp = make_input("blackscholes")
        mem = run_workload(w, inp)
        n = inp.args[0]

        def cndf(x):
            ax = abs(x)
            k = 1.0 / (1.0 + 0.2316419 * ax)
            poly = k * (0.319381530 + k * (-0.356563782 + k * (1.781477937 + k * (-1.821255978 + k * 1.330274429))))
            pdf = math.exp(-0.5 * ax * ax) * 0.3989422804014327
            c = 1.0 - pdf * poly
            return c if x >= 0 else 1.0 - c

        got = mem.read_global("prices", n)
        for i in range(n):
            s = inp.arrays["sp"][i]
            x = inp.arrays["xs"][i]
            r = inp.arrays["rs"][i]
            v = inp.arrays["vs"][i]
            t = inp.arrays["ts"][i]
            otype = inp.arrays["ot"][i]
            d1 = (math.log(s / x) + (r + 0.5 * v * v) * t) / (v * math.sqrt(t))
            d2 = d1 - v * math.sqrt(t)
            fut = x * math.exp(-r * t)
            call = s * cndf(d1) - fut * cndf(d2)
            put = fut * (1 - cndf(d2)) - s * (1 - cndf(d1))
            expected = put if otype > 0.5 else call
            assert got[i] == pytest.approx(expected, rel=1e-10)

    def test_lud_factorization(self):
        w = get_workload("lud")
        inp = make_input("lud")
        mem = run_workload(w, inp)
        n = inp.args[0]
        original = np.array(inp.arrays["a"]).reshape(n, n)
        factored = np.array(mem.read_global("a", n * n)).reshape(n, n)
        L = np.tril(factored, -1) + np.eye(n)
        U = np.triu(factored)
        np.testing.assert_allclose(L @ U, original, rtol=1e-8, atol=1e-10)

    def test_yolite_argmax(self):
        w = get_workload("yolite")
        inp = make_input("yolite")
        mem = run_workload(w, inp)
        side, _, k, f = inp.args
        img = np.array(inp.arrays["img"]).reshape(side, side)
        wt = np.array(inp.arrays["wt"]).reshape(f, k, k)
        bias = np.array(inp.arrays["bias"])[:f]
        o = side - k + 1
        feat = np.zeros((f, o, o))
        for fi in range(f):
            for y in range(o):
                for x in range(o):
                    z = np.sum(img[y : y + k, x : x + k] * wt[fi]) + bias[fi]
                    feat[fi, y, x] = z if z > 0 else 0.1 * z
        flat = feat.reshape(-1)
        label, score = mem.read_global("det", 2)
        assert int(label) == int(np.argmax(flat))
        assert score == pytest.approx(flat.max(), rel=1e-12)
        got_feat = np.array(mem.read_global("feat", flat.size))
        np.testing.assert_allclose(got_feat, flat, rtol=1e-10)
