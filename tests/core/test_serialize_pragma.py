import io

import pytest

from repro.core import (
    LoopProfile,
    QoSModel,
    RSkipConfig,
    apply_rskip,
    build_memo_table,
    load_profiles,
    profiles_from_json,
    profiles_to_json,
    save_profiles,
)
from repro.eval import Harness
from repro.workloads import get_workload

from ..conftest import build_dot_module, run_main


def make_profiles():
    memo = build_memo_table(
        [[1.0, 2.0], [1.01, 2.0], [5.0, 7.0], [5.02, 7.0]] * 20,
        [3.0, 3.0, 12.0, 12.0] * 20,
        total_bits=6,
    )
    return {
        "main:loopA": LoopProfile(
            qos=QoSModel({"123": 2.0, "321": 0.5}, default_tp=1.0),
            memo=memo,
            default_tp=1.0,
        ),
        "main:loopB": LoopProfile(qos=QoSModel({}, 0.5)),
    }


class TestSerialization:
    def test_json_roundtrip(self):
        profiles = make_profiles()
        restored = profiles_from_json(profiles_to_json(profiles))
        assert set(restored) == set(profiles)
        a = restored["main:loopA"]
        assert a.qos.table == {"123": 2.0, "321": 0.5}
        assert a.default_tp == 1.0
        assert a.memo is not None
        assert a.memo.bits == profiles["main:loopA"].memo.bits
        assert a.memo.table == profiles["main:loopA"].memo.table
        assert [q.edges for q in a.memo.quantizers] == [
            q.edges for q in profiles["main:loopA"].memo.quantizers
        ]
        b = restored["main:loopB"]
        assert b.memo is None and b.default_tp is None

    def test_file_roundtrip(self, tmp_path):
        path = str(tmp_path / "profiles.json")
        save_profiles(make_profiles(), path)
        restored = load_profiles(path)
        assert "main:loopA" in restored

    def test_stream_roundtrip(self):
        buf = io.StringIO()
        save_profiles(make_profiles(), buf)
        buf.seek(0)
        assert "main:loopB" in load_profiles(buf)

    def test_version_check(self):
        with pytest.raises(ValueError, match="unsupported profile format"):
            profiles_from_json('{"format": 99, "profiles": {}}')

    def test_restored_profiles_behave_identically(self):
        """Train on blackscholes, serialize, reload, re-run: same skips."""
        workload = get_workload("blackscholes")
        harness = Harness(workload, scale=0.35, timing=False)
        trained = harness.profiles_for(0.2)
        restored = profiles_from_json(profiles_to_json(trained))

        from repro.eval import prepare

        inp = workload.test_inputs(1, scale=0.35)[0]

        def run_with(profiles):
            prepared = prepare(workload, "AR20", RSkipConfig(), profiles)
            memory = workload.fresh_memory(prepared.module, inp)
            from repro.runtime import Interpreter

            interp = Interpreter(prepared.module, memory=memory)
            interp.register_intrinsics(prepared.intrinsics)
            interp.run(prepared.main, inp.args)
            return prepared.runtime.total_stats()

        s1 = run_with(trained)
        s2 = run_with(restored)
        assert s1.skipped == s2.skipped
        assert s1.recomputed == s2.recomputed


class TestPragma:
    def test_ar_override_by_key(self):
        module = build_dot_module()
        app = apply_rskip(
            module, RSkipConfig(acceptable_range=1.0), ar_overrides={"main:*": 0.0}
        )
        runtime = app.runtime.loop(0)
        assert runtime.config.acceptable_range == 0.0
        run_main(module, [8, 8], intrinsics=app.intrinsics())
        # AR0 means fuzzy validation degenerated to exact matching
        stats = runtime.stats
        assert stats.recomputed > 0

    def test_exact_key_override(self):
        module = build_dot_module()
        probe = apply_rskip(build_dot_module(), RSkipConfig())
        key = probe.layouts[0].key
        app = apply_rskip(module, RSkipConfig(acceptable_range=0.8),
                          ar_overrides={key: 0.2})
        assert app.runtime.loop(0).config.acceptable_range == 0.2

    def test_non_matching_override_ignored(self):
        module = build_dot_module()
        app = apply_rskip(module, RSkipConfig(acceptable_range=0.8),
                          ar_overrides={"other:*": 0.0})
        assert app.runtime.loop(0).config.acceptable_range == 0.8

    def test_function_attribute_pragma(self):
        module = build_dot_module()
        module.get_function("main").attrs["rskip.acceptable_range"] = 0.0
        app = apply_rskip(module, RSkipConfig(acceptable_range=1.0))
        assert app.runtime.loop(0).config.acceptable_range == 0.0

    def test_key_override_beats_function_pragma(self):
        module = build_dot_module()
        module.get_function("main").attrs["rskip.acceptable_range"] = 0.5
        app = apply_rskip(module, RSkipConfig(), ar_overrides={"main:*": 0.2})
        assert app.runtime.loop(0).config.acceptable_range == 0.2
