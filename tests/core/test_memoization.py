import math
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    InputQuantizer,
    MemoTable,
    bit_tuning,
    build_memo_table,
    histogram_levels,
    uniform_levels,
)


def clustered_dataset(n=600, seed=0):
    """f(x, y) with x from 3 popular clusters and y from 2."""
    rng = random.Random(seed)
    X, y = [], []
    for _ in range(n):
        a = rng.choice([1.0, 5.0, 9.0]) * (1 + rng.uniform(-0.01, 0.01))
        b = rng.choice([2.0, 7.0]) * (1 + rng.uniform(-0.01, 0.01))
        X.append([a, b])
        y.append(a * a + 3 * b)
    return X, y


class TestLevels:
    def test_uniform_levels_equal_width(self):
        edges = uniform_levels([0.0, 10.0], 4)
        assert edges == pytest.approx([2.5, 5.0, 7.5])

    def test_uniform_degenerate(self):
        assert uniform_levels([3.0, 3.0], 8) == []
        assert uniform_levels([], 8) == []
        assert uniform_levels([1.0, 2.0], 1) == []

    def test_histogram_levels_follow_density(self):
        rng = random.Random(1)
        samples = [rng.gauss(0, 0.1) for _ in range(500)]
        samples += [rng.gauss(10, 0.1) for _ in range(500)]
        edges = histogram_levels(samples, 4)
        assert len(edges) == 3
        # at least one edge must separate the two dense clumps: it lies
        # above every clump-0 sample and at/below the start of clump 1
        clump0_max = max(s for s in samples if s < 5)
        clump1_min = min(s for s in samples if s > 5)
        assert any(clump0_max < e <= clump1_min + 0.5 for e in edges)

    def test_histogram_edges_sorted(self):
        rng = random.Random(2)
        samples = [rng.uniform(0, 1) for _ in range(300)]
        edges = histogram_levels(samples, 8)
        assert edges == sorted(edges)

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.floats(min_value=-100, max_value=100), min_size=2, max_size=80),
           st.sampled_from([2, 4, 8]))
    def test_histogram_level_count(self, samples, levels):
        edges = histogram_levels(samples, levels)
        assert len(edges) <= levels - 1


class TestQuantizer:
    def test_quantize_bins(self):
        q = InputQuantizer([1.0, 2.0])
        assert q.quantize(0.5) == 0
        assert q.quantize(1.5) == 1
        assert q.quantize(2.5) == 2
        assert q.levels == 3

    def test_nan_goes_to_zero(self):
        q = InputQuantizer([1.0])
        assert q.quantize(math.nan) == 0

    def test_edge_inclusion(self):
        q = InputQuantizer([1.0])
        assert q.quantize(1.0) == 1  # bisect_right: edges belong below


class TestBitTuning:
    def test_distributes_bits_to_impactful_inputs(self):
        X, y = clustered_dataset()
        bits = bit_tuning(X, y, total_bits=8)
        # both inputs matter; neither should be starved
        assert all(b >= 1 for b in bits)
        assert sum(bits) <= 8

    def test_stops_when_converged(self):
        X, y = clustered_dataset()
        bits = bit_tuning(X, y, total_bits=20)
        # 3 and 2 clusters need ~2+1 bits; the occupancy regularizer must
        # stop well short of the full 20-bit budget
        assert sum(bits) <= 8

    def test_empty_input(self):
        assert bit_tuning([], [], 8) == []


class TestMemoTable:
    def test_build_and_predict(self):
        X, y = clustered_dataset()
        table = build_memo_table(X, y, total_bits=8)
        hits = 0
        for args, expect in zip(X[:100], y[:100]):
            got = table.predict(args)
            if got is not None and abs(got - expect) <= 0.1 * abs(expect):
                hits += 1
        assert hits >= 95
        assert table.stats.lookups == 100

    def test_miss_on_unseen_cell(self):
        quantizers = [InputQuantizer([1.0, 2.0]), InputQuantizer([5.0])]
        table = MemoTable(quantizers, [2, 1], {(0, 0): 42.0})
        assert table.predict([0.5, 1.0]) == 42.0
        assert table.predict([1.5, 9.0]) is None  # cell (1, 1) never trained
        assert table.stats.misses == 1
        assert table.stats.hits == 1

    def test_accuracy_metric(self):
        X, y = clustered_dataset()
        table = build_memo_table(X, y, total_bits=8)
        assert table.accuracy(X, y) > 0.9
        assert 0.0 <= table.mean_relative_error(X, y) < 0.05

    def test_histogram_beats_uniform_on_skewed_inputs(self):
        """The paper's claim: density-aware quantization builds a more
        efficient table than the uniform assumption of prior work."""
        rng = random.Random(3)
        X, y = [], []
        for _ in range(800):
            # skewed: most mass near 0, a thin tail to 100
            a = rng.expovariate(1.0)
            b = rng.choice([1.0, 2.0])
            X.append([min(a, 100.0) * 10, b])
            y.append(math.sin(min(a, 100.0)) + b)
        hist = build_memo_table(X, y, total_bits=7, histogram_quantization=True)
        unif = build_memo_table(X, y, total_bits=7, histogram_quantization=False)
        assert hist.mean_relative_error(X, y) <= unif.mean_relative_error(X, y)

    def test_charge_scales_with_inputs(self):
        X, y = clustered_dataset()
        table = build_memo_table(X, y, total_bits=6)
        assert len(table.charge()) == 3 * 2 + 3

    def test_validation(self):
        with pytest.raises(ValueError):
            build_memo_table([[1.0]], [], total_bits=4)
        with pytest.raises(ValueError):
            build_memo_table([], [], total_bits=4)

    def test_hit_rate_stat(self):
        X, y = clustered_dataset()
        table = build_memo_table(X, y, total_bits=8)
        for args in X[:50]:
            table.predict(args)
        assert table.stats.hit_rate > 0.9
