import pytest

from repro.core import RSkipConfig, apply_rskip
from repro.ir import Opcode, verify_module
from repro.runtime import FaultPlan, Interpreter, TrapError

from ..conftest import (
    build_call_module,
    build_dot_module,
    build_rmw_module,
    run_main,
    seed_memory,
)

BUILDERS = {
    "dot": (build_dot_module, [8, 8]),
    "call": (build_call_module, [8]),
    "rmw": (build_rmw_module, [8, 8]),
}


def golden_out(name):
    builder, args = BUILDERS[name]
    _, mem = run_main(builder(), args)
    return mem.read_global("out", args[0])


def rskip_run(name, config, protect=True):
    builder, args = BUILDERS[name]
    module = builder()
    app = apply_rskip(module, config, protect=protect)
    verify_module(module)
    result, mem = run_main(module, args, intrinsics=app.intrinsics())
    return app, result, mem.read_global("out", args[0])


class TestTransformStructure:
    def test_reduction_layout(self):
        module = build_dot_module()
        app = apply_rskip(module, RSkipConfig())
        assert len(app.layouts) == 1
        layout = app.layouts[0]
        assert layout.mode == "reduction"
        assert layout.body in module.functions
        assert layout.dup in module.functions
        assert layout.cp in module.functions
        assert not layout.rmw

    def test_call_layout(self):
        module = build_call_module()
        app = apply_rskip(module, RSkipConfig())
        layout = app.layouts[0]
        assert layout.mode == "call"
        assert layout.callee == "g"
        assert layout.callee_dup == "g.dup"
        assert layout.n_args == 2
        assert layout.body is None

    def test_rmw_layout(self):
        module = build_rmw_module()
        app = apply_rskip(module, RSkipConfig())
        layout = app.layouts[0]
        assert layout.mode == "reduction"
        assert layout.rmw

    def test_skeleton_is_conventionally_protected(self):
        module = build_dot_module()
        app = apply_rskip(module, RSkipConfig())
        main = module.get_function("main")
        assert main.attrs.get("protected") == "swift-r"
        cp = module.get_function(app.layouts[0].cp)
        assert cp.attrs.get("protected") == "swift-r"

    def test_body_functions_left_unprotected(self):
        module = build_dot_module()
        app = apply_rskip(module, RSkipConfig())
        layout = app.layouts[0]
        assert not module.get_function(layout.body).attrs.get("protected")
        assert not module.get_function(layout.dup).attrs.get("protected")

    def test_dup_registers_renamed(self):
        module = build_dot_module()
        app = apply_rskip(module, RSkipConfig())
        dup = module.get_function(app.layouts[0].dup)
        assert all(p.name.endswith(".d") for p in dup.params)

    def test_unprotected_variant(self):
        module = build_dot_module()
        app = apply_rskip(module, RSkipConfig(), protect=False)
        assert not module.get_function("main").attrs.get("protected")
        verify_module(module)


class TestSemanticPreservation:
    @pytest.mark.parametrize("name", ["dot", "call", "rmw"])
    @pytest.mark.parametrize("ar", [0.0, 0.2, 1.0])
    def test_output_bitwise_identical(self, name, ar):
        golden = golden_out(name)
        app, result, out = rskip_run(name, RSkipConfig(acceptable_range=ar))
        assert out == golden

    @pytest.mark.parametrize("name", ["dot", "call", "rmw"])
    def test_output_identical_without_protection_pass(self, name):
        golden = golden_out(name)
        _, _, out = rskip_run(name, RSkipConfig(), protect=False)
        assert out == golden

    def test_cp_fallback_path(self):
        golden = golden_out("dot")
        module = build_dot_module()
        app = apply_rskip(module, RSkipConfig())
        app.runtime.loop(0).disabled = True  # force the CP version
        _, mem = run_main(module, [8, 8], intrinsics=app.intrinsics())
        assert mem.read_global("out", 8) == golden
        assert app.runtime.loop(0).stats.executions_cp > 0
        assert app.runtime.loop(0).stats.elements == 0


class TestSkipBehavior:
    def test_ar0_is_exact_validation(self):
        """At AR0 an element skips only when the linear prediction matches
        bit-exactly — everything else is re-computed."""
        app, _, _ = rskip_run("dot", RSkipConfig(acceptable_range=0.0))
        stats = app.runtime.total_stats()
        assert stats.elements > 0
        assert stats.recomputed + stats.skipped == stats.elements
        assert stats.recomputed > 0
        app_wide, _, _ = rskip_run("dot", RSkipConfig(acceptable_range=1.0))
        assert stats.skip_rate <= app_wide.runtime.total_stats().skip_rate

    def test_wide_ar_skips(self):
        app, _, _ = rskip_run("dot", RSkipConfig(acceptable_range=1.0))
        assert app.runtime.total_stats().skip_rate > 0.5

    def test_skip_reduces_instructions(self):
        builder, args = BUILDERS["dot"]
        base, _ = run_main(builder(), args)
        app0, r0, _ = rskip_run("dot", RSkipConfig(acceptable_range=0.0))
        app1, r1, _ = rskip_run("dot", RSkipConfig(acceptable_range=1.0))
        assert r1.steps < r0.steps
        # and the paper's core claim: cheaper than ~2x re-execution
        assert r1.steps / base.steps < r0.steps / base.steps

    def test_call_mode_buffers_args(self):
        app, _, _ = rskip_run("call", RSkipConfig(acceptable_range=0.0))
        stats = app.runtime.total_stats()
        assert stats.recomputed == stats.elements  # AR0: all re-computed via g.dup


class TestFaultSemantics:
    def _faulted(self, ar, step, bit, pick, region_func):
        module = build_dot_module()
        app = apply_rskip(module, RSkipConfig(acceptable_range=ar))
        from repro.runtime import Region

        region = Region(funcs={region_func.format(**{"b": app.layouts[0].body, "d": app.layouts[0].dup})})
        mem = seed_memory(module)
        interp = Interpreter(
            module,
            memory=mem,
            fault_plan=FaultPlan(step=step, kind="value", bit=bit, pick=pick),
            fault_region=region,
            max_steps=10_000_000,
        )
        interp.register_intrinsics(app.intrinsics())
        try:
            interp.run("main", [8, 8])
        except TrapError:
            return app, None
        return app, mem.read_global("out", 8)

    def test_fault_in_redundant_copy_is_harmless(self):
        """Faults in body.dup never change the program output."""
        golden = golden_out("dot")
        clean = 0
        trials = 0
        for k in range(24):
            app, out = self._faulted(0.0, step=20 + 37 * k, bit=52, pick=(k * 0.11) % 1, region_func="{d}")
            if out is None:
                continue
            trials += 1
            if out == golden:
                clean += 1
        assert trials > 0
        assert clean == trials

    def test_big_fault_in_original_is_recovered_at_ar0(self):
        """AR0 validates exactly: any corruption of the original value is
        caught by re-computation and fixed by the vote."""
        golden = golden_out("dot")
        recovered, trials = 0, 0
        for k in range(24):
            app, out = self._faulted(0.0, step=20 + 37 * k, bit=60, pick=(k * 0.11) % 1, region_func="{b}")
            if out is None:
                continue
            trials += 1
            if out == golden:
                recovered += 1
        assert trials > 0
        assert recovered >= trials * 0.7

    def test_small_fault_can_escape_wide_ar(self):
        """The paper's false negatives: a low-mantissa flip inside the
        acceptable range survives fuzzy validation."""
        golden = golden_out("dot")
        escaped = 0
        for k in range(40):
            app, out = self._faulted(1.0, step=15 + 29 * k, bit=10, pick=(k * 0.07) % 1, region_func="{b}")
            if out is not None and out != golden:
                escaped += 1
        assert escaped > 0


class TestApplicationApi:
    def test_layout_for(self):
        module = build_dot_module()
        app = apply_rskip(module, RSkipConfig())
        key = app.layouts[0].key
        assert app.layout_for(key) is app.layouts[0]
        with pytest.raises(KeyError):
            app.layout_for("nope")

    def test_only_filter(self):
        module = build_dot_module()
        app = apply_rskip(module, RSkipConfig(), only=[])
        assert app.layouts == []
