import pytest

from repro.core import (
    Element,
    LoopProfile,
    LoopRuntime,
    MemoTable,
    QoSModel,
    RSkipConfig,
    RskipRuntime,
    SkipStats,
)
from repro.core.memoization import InputQuantizer


def make_runtime(ar=1.0, tp=0.5, rmw=False, profile=None, **cfg_kwargs):
    config = RSkipConfig(acceptable_range=ar, tuning_parameter=tp, **cfg_kwargs)
    return LoopRuntime("test:loop", config, profile, rmw=rmw)


def observe_series(runtime, values, addr_base=100):
    """Feed a value series; returns the total pending-queue growth."""
    runtime.enter()
    for i, v in enumerate(values):
        runtime.observe(Element(i, v, addr_base + i))
    runtime.flush()


class TestObservationPath:
    def test_linear_series_skips_interior(self):
        runtime = make_runtime()
        observe_series(runtime, [2.0 * i for i in range(20)])
        stats = runtime.stats
        assert stats.elements == 20
        assert stats.skipped_interp == 18
        assert len(runtime.queue) == 2  # the endpoints await re-computation

    def test_charges_returned(self):
        runtime = make_runtime()
        runtime.enter()
        _, charge = runtime.observe(Element(0, 1.0, 100))
        assert charge  # bookkeeping is never free

    def test_trend_break_produces_phases(self):
        runtime = make_runtime(tp=0.1)
        values = [float(i) for i in range(10)] + [50.0 - i for i in range(10)]
        observe_series(runtime, values)
        assert runtime.stats.phases >= 2

    def test_outlier_goes_to_queue(self):
        runtime = make_runtime(ar=0.05, tp=30.0)
        values = [float(i) for i in range(20)]
        values[10] = 9.0  # small dent: within TP 30 trend, outside AR 5%
        observe_series(runtime, values)
        queued = {e.index for e in runtime.queue}
        assert 10 in queued
        assert runtime.stats.interp_mispredictions >= 1


class TestRecomputeDrain:
    def drain_all(self, runtime, recompute_fn):
        fixed = {}
        while True:
            idx, _ = runtime.fetch()
            if idx < 0:
                break
            rv = recompute_fn(idx)
            value, _ = runtime.resolve(rv)
            need2, _ = runtime.need2()
            if need2:
                value, _ = runtime.resolve2(recompute_fn(idx))
            addr, _ = runtime.addr()
            fixed[idx] = (value, addr)
        return fixed

    def test_matching_recompute_confirms(self):
        runtime = make_runtime()
        observe_series(runtime, [2.0 * i for i in range(10)])
        fixed = self.drain_all(runtime, lambda i: 2.0 * i)
        assert set(fixed) == {0, 9}
        assert fixed[0] == (0.0, 100)
        assert runtime.stats.recompute_mismatches == 0

    def test_corrupted_original_is_voted_out(self):
        runtime = make_runtime(ar=0.1, tp=30.0)
        clean = [2.0 * i for i in range(10)]
        corrupted = list(clean)
        corrupted[9] = 999.0  # endpoint corrupted in the master copy
        observe_series(runtime, corrupted)
        fixed = self.drain_all(runtime, lambda i: clean[i])
        assert fixed[9][0] == clean[9]
        assert runtime.stats.corrected_master == 1
        assert runtime.stats.recompute_mismatches == 1

    def test_corrupted_redundant_copy_keeps_original(self):
        runtime = make_runtime()
        clean = [2.0 * i for i in range(10)]
        observe_series(runtime, clean)
        calls = {"n": 0}

        def recompute(i):
            calls["n"] += 1
            if calls["n"] == 1:
                return -1.0  # the first re-computation was itself corrupted
            return clean[i]

        fixed = self.drain_all(runtime, recompute)
        assert fixed[0][0] == clean[0]
        assert runtime.stats.corrected_shadow == 1

    def test_fetch_without_queue(self):
        runtime = make_runtime()
        runtime.enter()
        idx, _ = runtime.fetch()
        assert idx == -1
        with pytest.raises(RuntimeError):
            runtime.orig()


class TestMemoIntegration:
    def make_memo(self):
        return MemoTable(
            [InputQuantizer([5.0])],
            [1],
            {(0,): 1.0, (1,): 10.0},
        )

    def test_memo_validates_endpoints(self):
        profile = LoopProfile(memo=self.make_memo())
        runtime = make_runtime(ar=0.2, profile=profile)
        runtime.enter()
        for i in range(10):
            runtime.observe(Element(i, 1.0 + 0.01 * i, 100 + i, args=(2.0,)))
        runtime.flush()
        # endpoints predicted ~1.0 by the table and within AR20 -> skipped
        assert runtime.stats.skipped_memo == 2
        assert len(runtime.queue) == 0

    def test_memo_miss_falls_back_to_recompute(self):
        profile = LoopProfile(memo=self.make_memo())
        runtime = make_runtime(ar=0.2, profile=profile)
        runtime.enter()
        for i in range(10):
            # memo predicts 10.0, actual ~60: outside AR -> recompute
            runtime.observe(Element(i, 60.0 + i, 100 + i, args=(7.0,)))
        runtime.flush()
        assert runtime.stats.memo_mispredictions >= 1
        assert len(runtime.queue) >= 1

    def test_memo_disabled_without_args(self):
        profile = LoopProfile(memo=self.make_memo())
        runtime = make_runtime(ar=0.2, profile=profile)
        observe_series(runtime, [1.0] * 10)  # no args recorded
        assert runtime.stats.skipped_memo == 0


class TestRunTimeManagement:
    def test_tp_adjustment_follows_qos(self):
        qos = QoSModel({}, default_tp=0.5)
        # every signature maps to a big TP
        profile = LoopProfile(qos=QoSModel({}, 0.5), default_tp=0.5)
        runtime = make_runtime(profile=profile, window=8)
        sig_tp = 9.9
        runtime.profile.qos.table = {s: sig_tp for s in _all_signatures(runtime)}
        runtime.enter()
        for i in range(30):
            runtime.observe(Element(i, float(i % 4), 100 + i))
        assert runtime.stats.tp_adjustments >= 1
        assert runtime.slicer.tp == sig_tp

    def test_select_and_disable(self):
        runtime = make_runtime()
        assert runtime.select() == 1
        runtime.disabled = True
        assert runtime.select() == 0
        assert runtime.stats.executions_pp == 1
        assert runtime.stats.executions_cp == 1

    def test_exit_disables_useless_interpolation(self):
        runtime = make_runtime(ar=0.0001, tp=0.01, window=4)
        # wildly alternating outputs: nothing is ever skipped
        observe_series(runtime, [(-1.0) ** i * (1 + i) for i in range(64)])
        runtime.queue.clear()
        runtime.exit()
        assert runtime.disabled

    def test_exit_disables_bad_memo(self):
        memo = MemoTable([InputQuantizer([5.0])], [1], {(0,): -99.0, (1,): -99.0})
        profile = LoopProfile(memo=memo)
        runtime = make_runtime(ar=0.01, tp=0.01, profile=profile)
        runtime.enter()
        for i in range(80):
            runtime.observe(Element(i, float(i * i % 37), 100 + i, args=(1.0,)))
        runtime.flush()
        runtime.queue.clear()
        runtime.exit()
        assert not runtime.memo_active

    def test_recording_mode(self):
        runtime = make_runtime()
        runtime.recording = []
        runtime.enter()
        runtime.observe(Element(0, 1.0, 100))
        runtime.enter()
        runtime.observe(Element(0, 2.0, 100))
        assert len(runtime.recording) == 2
        assert runtime.recording[0][0].value == 1.0
        assert runtime.recording[1][0].value == 2.0


class TestLifecycle:
    def make_dirty_runtime(self):
        """A runtime with every piece of mutable state visibly perturbed."""
        memo = MemoTable([InputQuantizer([5.0])], [1], {(0,): 1.0, (1,): 10.0})
        profile = LoopProfile(memo=memo, default_tp=0.25)
        runtime = make_runtime(ar=0.2, profile=profile, window=4)
        runtime.enter()
        for i in range(40):
            runtime.observe(Element(i, float(i % 7), 100 + i, args=(2.0,)))
        runtime.flush()
        runtime.exit()
        runtime.slicer.set_tp(9.9)
        runtime.disabled = True
        runtime.memo_active = False
        runtime.signatures.append("123")
        return runtime, profile

    def test_reset_restores_constructed_state(self):
        runtime, profile = self.make_dirty_runtime()
        runtime.reset()
        fresh = LoopRuntime(runtime.key, runtime.config, profile)
        assert runtime.stats == fresh.stats == SkipStats()
        assert runtime.slicer.tp == fresh.slicer.tp == 0.25
        assert len(runtime.slicer) == 0
        assert runtime.payloads == [] and not runtime.queue
        assert runtime.current is None
        assert runtime.disabled is False
        assert runtime.memo_active is True
        assert runtime.signatures == []
        assert runtime.recording is None
        assert profile.memo.stats.lookups == 0

    def test_reset_isolates_runs(self):
        """Two identical runs after reset produce identical stats — nothing
        carries over from a previous (possibly fault-corrupted) run."""
        series = [float(i % 5) for i in range(30)]
        runtime, _ = self.make_dirty_runtime()
        runtime.reset()
        observe_series(runtime, series)
        first = runtime.stats.copy()
        runtime.reset()
        observe_series(runtime, series)
        assert runtime.stats == first

    def test_stats_copy_and_delta(self):
        s = SkipStats(elements=10, skipped_interp=4, recompute_mismatches=1)
        snap = s.copy()
        assert snap == s and snap is not s
        s.merge(SkipStats(elements=5, skipped_interp=2, recompute_mismatches=2))
        d = s.delta(snap)
        assert d.elements == 5
        assert d.skipped_interp == 2
        assert d.recompute_mismatches == 2

    def test_registry_reset_and_delta(self):
        registry = RskipRuntime(RSkipConfig())
        r0 = registry.add_loop(0, "a")
        observe_series(r0, [1.0 * i for i in range(10)])
        snap = registry.total_stats()
        observe_series(r0, [1.0 * i for i in range(6)])
        assert registry.stats_delta(snap).elements == 6
        registry.reset()
        assert registry.total_stats() == SkipStats()


class TestWindowedQoS:
    def test_long_good_history_does_not_mask_dead_predictor(self):
        """Once the recent executions show a useless predictor, it is
        disabled even though whole-life counters still look healthy."""
        runtime = make_runtime(ar=0.2, tp=0.5, window=4)
        good = [2.0 * i for i in range(64)]
        bad = [(-1.0) ** i * (1 + i) for i in range(64)]
        for _ in range(4):  # a long profitable history
            observe_series(runtime, good)
            runtime.queue.clear()
            runtime.exit()
        assert not runtime.disabled
        for _ in range(8):  # the predictor stops working for good
            observe_series(runtime, bad)
            runtime.queue.clear()
            runtime.exit()
        # cumulative skip rate is still far above the threshold...
        assert runtime.stats.skip_rate > runtime.config.interp_min_skip
        # ...but the recent window sees a dead predictor
        assert runtime.disabled

    def test_bad_warmup_does_not_condemn_settled_predictor(self):
        runtime = make_runtime(
            ar=0.2, tp=0.5, window=4, interp_min_skip=0.5
        )
        bad = [(-1.0) ** i * (1 + i) for i in range(64)]
        good = [2.0 * i for i in range(64)]
        observe_series(runtime, bad * 16)  # one long hostile warm-up run
        runtime.queue.clear()
        for _ in range(8):
            observe_series(runtime, good)
            runtime.queue.clear()
            runtime.exit()
        # cumulative skip rate sits below the threshold, the recent
        # executions above it: the settled predictor stays enabled
        assert runtime.stats.skip_rate < runtime.config.interp_min_skip
        assert not runtime.disabled


class TestStatsAndRegistry:
    def test_stats_merge(self):
        a = SkipStats(elements=10, skipped_interp=5)
        b = SkipStats(elements=6, skipped_memo=2)
        a.merge(b)
        assert a.elements == 16
        assert a.skipped == 7

    def test_skip_rate(self):
        s = SkipStats(elements=10, skipped_interp=6, skipped_memo=2)
        assert s.skip_rate == pytest.approx(0.8)
        assert SkipStats().skip_rate == 0.0

    def test_runtime_registry_and_totals(self):
        registry = RskipRuntime(RSkipConfig())
        r0 = registry.add_loop(0, "a")
        r1 = registry.add_loop(1, "b")
        observe_series(r0, [1.0 * i for i in range(10)])
        observe_series(r1, [2.0 * i for i in range(6)])
        total = registry.total_stats()
        assert total.elements == 16
        assert registry.loop(0) is r0

    def test_intrinsic_table_roundtrip(self):
        registry = RskipRuntime(RSkipConfig())
        registry.add_loop(0, "a")
        table = registry.intrinsics()
        table["rskip.enter"](None, (0,))
        pend, charge = table["rskip.observe"](None, (0, 0, 1.0, 100))
        assert pend == 0
        idx, _ = table["rskip.fetch"](None, (0,))
        assert idx == -1


def _all_signatures(runtime):
    """Enumerate plausible signatures for the configured bins."""
    import itertools

    nbins = len(runtime.config.signature_bins) + 1
    return {
        "".join(str(d + 1) for d in perm)
        for perm in itertools.permutations(range(nbins))
    }
