import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    CutEvent,
    PhaseSlicer,
    Point,
    linear_prediction,
    simulate,
    validate_phase,
)


def feed(slicer, values):
    cuts = []
    for i, v in enumerate(values):
        cut = slicer.observe(i, v)
        if cut is not None:
            cuts.append(cut)
    return cuts


class TestPhaseSlicer:
    def test_linear_trend_never_cuts(self):
        slicer = PhaseSlicer(tuning_parameter=0.1)
        cuts = feed(slicer, [2.0 * i + 1.0 for i in range(50)])
        assert cuts == []
        assert len(slicer) == 50

    def test_trend_break_cuts_at_breaking_point(self):
        slicer = PhaseSlicer(tuning_parameter=0.1)
        values = [float(i) for i in range(10)] + [100.0, 101.0, 102.0]
        cuts = feed(slicer, values)
        assert len(cuts) == 1
        cut = cuts[0]
        assert [p.index for p in cut.points] == list(range(10))
        # the breaking point starts the next phase (Figure 5d)
        assert slicer.pending[0].index == 10

    def test_higher_tp_ignores_outliers(self):
        jagged = []
        for i in range(40):
            jagged.append(float(i) + (0.8 if i % 7 == 0 else 0.0))
        tight = PhaseSlicer(tuning_parameter=0.05)
        loose = PhaseSlicer(tuning_parameter=30.0)
        assert len(feed(tight, jagged)) > len(feed(loose, jagged))

    def test_max_pending_forces_cut(self):
        slicer = PhaseSlicer(tuning_parameter=0.1, max_pending=8)
        cuts = feed(slicer, [float(i) for i in range(30)])
        assert cuts
        assert all(len(c.points) <= 8 for c in cuts)
        assert any(c.reason == "cap" for c in cuts)

    def test_flush_returns_tail(self):
        slicer = PhaseSlicer(tuning_parameter=0.1)
        feed(slicer, [1.0, 2.0, 3.0])
        cut = slicer.flush()
        assert cut is not None and cut.reason == "flush"
        assert len(cut.points) == 3
        assert slicer.flush() is None

    def test_reset_clears_state(self):
        slicer = PhaseSlicer(tuning_parameter=0.1)
        feed(slicer, [1.0, 2.0, 3.0])
        slicer.reset()
        assert len(slicer) == 0
        assert slicer.slope_changes == []

    def test_slope_changes_recorded(self):
        slicer = PhaseSlicer(tuning_parameter=10.0)
        feed(slicer, [0.0, 1.0, 2.0, 4.0])  # slopes 1,1,2
        assert len(slicer.slope_changes) == 2
        assert slicer.slope_changes[0] == pytest.approx(0.0)
        assert slicer.slope_changes[1] == pytest.approx(1.0)

    def test_nan_values_cut(self):
        slicer = PhaseSlicer(tuning_parameter=5.0)
        cuts = feed(slicer, [1.0, 2.0, 3.0, math.nan, 1.0, 2.0])
        assert cuts  # the NaN cannot extend a trend

    def test_non_unit_indices(self):
        slicer = PhaseSlicer(tuning_parameter=0.1)
        cuts = []
        for i in range(0, 40, 4):
            cut = slicer.observe(i, 3.0 * i)
            if cut:
                cuts.append(cut)
        assert cuts == []


class TestLinearPrediction:
    def test_interpolates(self):
        first, last = Point(0, 0.0), Point(10, 20.0)
        assert linear_prediction(first, last, 5) == pytest.approx(10.0)

    def test_degenerate_phase(self):
        p = Point(3, 7.0)
        assert linear_prediction(p, p, 3) == 7.0


class TestValidatePhase:
    def test_endpoints_always_recomputed(self):
        cut = CutEvent([Point(i, float(i)) for i in range(10)])
        skipped, recompute = validate_phase(cut, acceptable_range=1.0)
        recomputed_idx = {p.index for p in recompute}
        assert 0 in recomputed_idx and 9 in recomputed_idx
        assert len(skipped) == 8

    def test_short_phase_all_recomputed(self):
        cut = CutEvent([Point(0, 1.0), Point(1, 2.0)])
        skipped, recompute = validate_phase(cut, acceptable_range=1.0)
        assert skipped == [] and len(recompute) == 2

    def test_interior_outlier_flagged(self):
        points = [Point(i, float(i)) for i in range(10)]
        points[5] = Point(5, 50.0)
        skipped, recompute = validate_phase(CutEvent(points), acceptable_range=0.2)
        assert 5 in {p.index for p in recompute}
        assert 4 in {p.index for p in skipped}

    def test_partition_is_exact(self):
        cut = CutEvent([Point(i, math.sin(i / 3.0)) for i in range(20)])
        skipped, recompute = validate_phase(cut, acceptable_range=0.5)
        assert len(skipped) + len(recompute) == 20
        assert {p.index for p in skipped}.isdisjoint({p.index for p in recompute})

    def test_wider_ar_skips_more(self):
        points = [Point(i, float(i) + (0.3 if i % 3 else 0.0)) for i in range(30)]
        s_narrow, _ = validate_phase(CutEvent(list(points)), acceptable_range=0.01)
        s_wide, _ = validate_phase(CutEvent(list(points)), acceptable_range=1.0)
        assert len(s_wide) >= len(s_narrow)


class TestSimulate:
    def test_perfect_line_skip_rate(self):
        result = simulate([2.0 * i for i in range(100)], 0.1, 0.2)
        # one flushed phase of 100 points: 98 interior skipped
        assert result.total == 100
        assert result.skipped == 98
        assert result.phases == 1

    def test_skip_rate_bounds(self):
        result = simulate([float(i % 7) for i in range(60)], 0.5, 0.5)
        assert 0.0 <= result.skip_rate <= 1.0

    def test_empty_sequence(self):
        result = simulate([], 0.5, 0.5)
        assert result.total == 0 and result.skip_rate == 0.0

    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(st.floats(min_value=-100, max_value=100), min_size=0, max_size=120),
        st.sampled_from([0.1, 0.5, 2.0, 30.0]),
        st.sampled_from([0.2, 1.0]),
    )
    def test_invariants(self, values, tp, ar):
        result = simulate(values, tp, ar)
        assert result.total == len(values)
        assert 0 <= result.skipped <= max(len(values) - 2, 0)
        assert sum(result.phase_lengths) == result.total
        # endpoints can never be skipped: each phase holds back >= min(2, len)
        reserved = sum(min(2, length) for length in result.phase_lengths)
        assert result.skipped <= result.total - reserved

    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=3, max_value=200))
    def test_line_always_one_phase(self, n):
        result = simulate([1.5 * i + 3 for i in range(n)], 0.5, 0.2)
        assert result.phases == 1
        assert result.skipped == n - 2
