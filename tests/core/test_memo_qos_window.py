"""Regression: the memo-QoS disable must be windowed, not whole-life.

Pre-fix, ``LoopRuntime.exit()`` judged memo accuracy over cumulative
``skipped_memo + memo_mispredictions`` counters, so a long accurate
prefix masked a predictor that a workload phase change had made stale —
the exact failure the interpolation path's recent-execution window was
built to avoid.  These tests drive the decision logic directly through
the per-execution counters and pin the windowed behaviour.
"""
from repro.core import LoopProfile, LoopRuntime, MemoTable, RSkipConfig
from repro.core.manager import MEMO_QOS_MIN_ATTEMPTS, QOS_RECENT_EXECUTIONS
from repro.core.memoization import InputQuantizer


def make_memo_runtime(**cfg_kwargs):
    profile = LoopProfile(
        memo=MemoTable([InputQuantizer([5.0])], [1], {(0,): 1.0, (1,): 10.0})
    )
    config = RSkipConfig(acceptable_range=0.2, **cfg_kwargs)
    return LoopRuntime("test:memo-loop", config, profile)


def memo_execution(runtime, hits=0, misses=0):
    """One loop execution whose memo predictor saw *hits* and *misses*."""
    runtime.enter()
    runtime.stats.skipped_memo += hits
    runtime.stats.memo_mispredictions += misses
    runtime.exit()


class TestWindowedMemoQoS:
    def test_long_accurate_prefix_does_not_mask_stale_table(self):
        """After a phase change makes the table stale, the memo predictor
        must disable within the recent-execution window — however long
        and accurate its earlier history was."""
        runtime = make_memo_runtime()
        per_exec = MEMO_QOS_MIN_ATTEMPTS  # every execution fills the window

        for _ in range(50):  # long, perfectly accurate history
            memo_execution(runtime, hits=per_exec)
        assert runtime.memo_active

        # stale-table phase: every prediction now misses.  Cumulative
        # accuracy stays ~0.86 after a full window of misses (the pre-fix
        # code never disables here); the windowed check must.
        for n in range(1, QOS_RECENT_EXECUTIONS + 1):
            memo_execution(runtime, misses=per_exec)
            if not runtime.memo_active:
                break
        assert not runtime.memo_active, (
            "stale memo predictor survived a full recent-execution window"
        )
        assert n <= QOS_RECENT_EXECUTIONS

    def test_small_recent_sample_does_not_disable(self):
        """Below MEMO_QOS_MIN_ATTEMPTS recent attempts the verdict is
        withheld — a couple of misses must not kill the predictor."""
        runtime = make_memo_runtime()
        memo_execution(runtime, misses=MEMO_QOS_MIN_ATTEMPTS // 4)
        assert runtime.memo_active

    def test_accurate_recent_window_keeps_memo_enabled(self):
        runtime = make_memo_runtime()
        for _ in range(3 * QOS_RECENT_EXECUTIONS):
            memo_execution(runtime, hits=MEMO_QOS_MIN_ATTEMPTS)
        assert runtime.memo_active

    def test_window_slides_past_old_executions(self):
        """Executions older than the window must not influence the
        verdict: misses followed by > window accurate executions leave a
        fully accurate window."""
        runtime = make_memo_runtime()
        # seed misses that would poison a cumulative check of the same
        # magnitude, but keep each execution below the disable sample
        for _ in range(QOS_RECENT_EXECUTIONS):
            memo_execution(runtime, misses=MEMO_QOS_MIN_ATTEMPTS // 2,
                           hits=MEMO_QOS_MIN_ATTEMPTS // 2)
        for _ in range(QOS_RECENT_EXECUTIONS):
            memo_execution(runtime, hits=MEMO_QOS_MIN_ATTEMPTS)
        assert runtime.memo_active
        assert sum(h for _, h in runtime._memo_recent) == sum(
            a for a, _ in runtime._memo_recent
        )

    def test_reset_clears_memo_window(self):
        runtime = make_memo_runtime()
        for _ in range(QOS_RECENT_EXECUTIONS):
            memo_execution(runtime, misses=MEMO_QOS_MIN_ATTEMPTS)
        assert not runtime.memo_active
        runtime.reset()
        assert runtime.memo_active
        assert not runtime._memo_recent
        assert runtime._memo_enter_mark == (0, 0)
        # a fresh accurate run stays enabled after the reset
        for _ in range(QOS_RECENT_EXECUTIONS):
            memo_execution(runtime, hits=MEMO_QOS_MIN_ATTEMPTS)
        assert runtime.memo_active
