from repro.core import DEFAULT_BINS, QoSModel, histogram, make_signature


class TestHistogram:
    def test_bin_edges_inclusive(self):
        counts = histogram([0.02, 0.1, 0.3, 1.0], bins=(0.02, 0.1, 0.3, 1.0))
        assert counts == [1, 1, 1, 1, 0]

    def test_overflow_bin(self):
        counts = histogram([5.0, 100.0], bins=(0.02, 0.1, 0.3, 1.0))
        assert counts[-1] == 2

    def test_empty(self):
        assert histogram([]) == [0] * (len(DEFAULT_BINS) + 1)


class TestSignature:
    def test_paper_style_ordering(self):
        # most changes land in the 3rd bin, then 1st, then 2nd
        changes = [0.2] * 5 + [0.01] * 3 + [0.05] * 2
        sig = make_signature(changes, bins=(0.02, 0.1, 0.3))
        assert sig.startswith("312")

    def test_ties_break_by_bin_index(self):
        sig = make_signature([0.01, 0.2], bins=(0.02, 0.1, 0.3))
        assert sig[0] == "1"  # equal counts: lower bin first

    def test_length_covers_all_bins(self):
        sig = make_signature([0.5], bins=(0.02, 0.1, 0.3, 1.0))
        assert len(sig) == 5
        assert set(sig) == {"1", "2", "3", "4", "5"}

    def test_distinguishes_contexts(self):
        smooth = make_signature([0.01] * 20)
        rough = make_signature([3.0] * 20)
        assert smooth != rough


class TestQoSModel:
    def test_lookup_hit(self):
        model = QoSModel({"12345": 2.0}, default_tp=0.5)
        assert model.lookup("12345", current_tp=0.1) == 2.0

    def test_unknown_signature_keeps_current(self):
        """The paper's fallback: keep the previous tuning parameter."""
        model = QoSModel({"12345": 2.0}, default_tp=0.5)
        assert model.lookup("54321", current_tp=0.7) == 0.7

    def test_len(self):
        assert len(QoSModel({"a": 1.0, "b": 2.0})) == 2
