"""White-box checks of the IR the RSkip transform emits."""
import pytest

from repro.core import RSkipConfig, apply_rskip
from repro.core.rskip import RskipError, _loop_config
from repro.ir import Opcode, verify_module

from ..conftest import build_call_module, build_dot_module


def transformed(builder, **kwargs):
    module = builder()
    app = apply_rskip(module, RSkipConfig(), protect=False, **kwargs)
    verify_module(module)
    return module, app


def intrinsic_names(func):
    return [i.callee for i in func.instructions() if i.op is Opcode.INTRIN]


class TestWrapperShape:
    def test_pp_machinery_present(self):
        module, app = transformed(build_dot_module)
        names = intrinsic_names(module.get_function("main"))
        for required in (
            "rskip.select", "rskip.enter", "rskip.observe", "rskip.fetch",
            "rskip.resolve", "rskip.need2", "rskip.resolve2", "rskip.addr",
            "rskip.flush", "rskip.exit",
        ):
            assert required in names, f"missing intrinsic {required}"

    def test_two_drains_emitted(self):
        """One drain after each observation, one after the flush."""
        module, app = transformed(build_dot_module)
        names = intrinsic_names(module.get_function("main"))
        assert names.count("rskip.fetch") == 2
        assert names.count("rskip.resolve") == 2
        assert names.count("rskip.resolve2") == 2

    def test_observe_arity_reduction(self):
        module, app = transformed(build_dot_module)
        observe = next(
            i for i in module.get_function("main").instructions()
            if i.op is Opcode.INTRIN and i.callee == "rskip.observe"
        )
        # (ctx, i, v, addr) — no RMW original, no call args
        assert len(observe.args) == 4

    def test_observe_arity_call_mode(self):
        module, app = transformed(build_call_module)
        observe = next(
            i for i in module.get_function("main").instructions()
            if i.op is Opcode.INTRIN and i.callee == "rskip.observe"
        )
        # (ctx, i, v, addr) + the callee's two arguments
        assert len(observe.args) == 4 + 2

    def test_body_calls_in_wrapper(self):
        module, app = transformed(build_dot_module)
        layout = app.layouts[0]
        calls = [
            i.callee for i in module.get_function("main").instructions()
            if i.op is Opcode.CALL
        ]
        assert calls.count(layout.body) == 1       # once per iteration
        assert calls.count(layout.dup) == 4        # two per drain (vote)
        assert calls.count(layout.cp) == 1         # the fallback path

    def test_provenance_covers_all_pp_blocks(self):
        module, app = transformed(build_dot_module)
        func = module.get_function("main")
        provenance = func.attrs["provenance"]
        for label in app.layouts[0].pp_labels:
            assert label in func.blocks
            assert provenance[label] == app.layouts[0].loop_labels[0] or (
                provenance[label] in app.layouts[0].loop_labels
            )

    def test_body_has_no_stores(self):
        module, app = transformed(build_dot_module)
        body = module.get_function(app.layouts[0].body)
        assert all(i.op is not Opcode.STORE for i in body.instructions())
        # and ends by returning the computed value
        rets = [i for i in body.instructions() if i.op is Opcode.RET]
        assert len(rets) == 1 and rets[0].args

    def test_cp_is_self_contained(self):
        module, app = transformed(build_dot_module)
        cp = module.get_function(app.layouts[0].cp)
        verify_module(module)
        assert cp.ret_type.value == "void"
        assert all(i.op is not Opcode.INTRIN for i in cp.instructions())


class TestMultiTarget:
    def test_lud_has_two_independent_contexts(self):
        from repro.workloads import get_workload

        module = get_workload("lud").build()
        app = apply_rskip(module, RSkipConfig(), protect=False)
        verify_module(module)
        assert len(app.layouts) == 2
        assert {l.ctx_id for l in app.layouts} == {0, 1}
        assert all(l.rmw for l in app.layouts)
        # each context has its own body/dup/cp functions
        names = [l.body for l in app.layouts] + [l.dup for l in app.layouts]
        assert len(set(names)) == 4


class TestErrorPaths:
    def test_loop_config_fallback(self):
        module, app = transformed(build_dot_module)
        layout = app.layouts[0]
        config = RSkipConfig(acceptable_range=0.8)
        assert _loop_config(module, config, layout, {}) is config

    def test_apply_twice_is_rejected_or_empty(self):
        module, app = transformed(build_dot_module)
        # re-detection finds the outlined call as a new target; protecting
        # twice must not silently corrupt the module
        try:
            app2 = apply_rskip(module, RSkipConfig(), protect=False)
            verify_module(module)
        except (RskipError, ValueError):
            pass
