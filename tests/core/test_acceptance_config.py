import math

import pytest
from hypothesis import given, strategies as st

from repro.core import (
    EPSILON,
    PAPER_ACCEPTABLE_RANGES,
    RSkipConfig,
    relative_difference,
    within_range,
)


class TestRelativeDifference:
    def test_basic(self):
        assert relative_difference(1.2, 1.0) == pytest.approx(0.2)
        assert relative_difference(0.8, 1.0) == pytest.approx(0.2)

    def test_zero_prediction_uses_epsilon(self):
        assert relative_difference(0.0, 0.0) == 0.0
        assert relative_difference(1.0, 0.0) > 1.0 / EPSILON / 2

    def test_nan_is_infinite(self):
        assert relative_difference(math.nan, 1.0) == math.inf
        assert relative_difference(1.0, math.nan) == math.inf

    @given(st.floats(min_value=-1e6, max_value=1e6),
           st.floats(min_value=0.01, max_value=1e6))
    def test_symmetric_in_sign_of_prediction(self, a, p):
        assert relative_difference(a, p) == relative_difference(-a, -p)


class TestWithinRange:
    def test_ar_boundaries(self):
        assert within_range(1.2, 1.0, 0.2)
        assert not within_range(1.21, 1.0, 0.2)
        assert within_range(2.0, 1.0, 1.0)  # AR100

    def test_ar_zero_is_exact(self):
        """The paper's pragma: AR 0 degenerates to exact validation."""
        assert within_range(1.0, 1.0, 0.0)
        assert not within_range(1.0 + 1e-15, 1.0, 0.0)

    def test_nan_never_validates(self):
        assert not within_range(math.nan, 1.0, 1.0)

    @given(
        st.floats(min_value=-1e3, max_value=1e3),
        st.floats(min_value=0.01, max_value=1e3),
        st.floats(min_value=0.0, max_value=2.0),
    )
    def test_monotone_in_ar(self, actual, predicted, ar):
        if within_range(actual, predicted, ar):
            assert within_range(actual, predicted, ar + 0.5)


class TestConfig:
    def test_paper_ranges(self):
        assert PAPER_ACCEPTABLE_RANGES == (0.2, 0.5, 0.8, 1.0)

    def test_labels(self):
        assert RSkipConfig(acceptable_range=0.2).label == "AR20"
        assert RSkipConfig(acceptable_range=1.0).label == "AR100"

    def test_with_ar_copies(self):
        base = RSkipConfig(acceptable_range=0.2, window=32)
        derived = base.with_ar(0.8)
        assert derived.acceptable_range == 0.8
        assert derived.window == 32
        assert base.acceptable_range == 0.2

    @pytest.mark.parametrize("kwargs", [
        {"acceptable_range": -0.1},
        {"tuning_parameter": -1.0},
        {"window": 1},
        {"max_pending": 2},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            RSkipConfig(**kwargs)

    def test_frozen(self):
        cfg = RSkipConfig()
        with pytest.raises(Exception):
            cfg.acceptable_range = 0.5
