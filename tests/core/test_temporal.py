import pytest

from repro.core import Element, LoopRuntime, RSkipConfig, TemporalPredictor, apply_rskip
from repro.ir import verify_module

from ..conftest import build_dot_module, run_main


class TestPredictor:
    def test_first_execution_has_no_predictions(self):
        t = TemporalPredictor()
        t.begin_execution()
        t.record(0, 1.0)
        assert t.predict(0) is None  # history rotates at the *next* entry

    def test_second_execution_predicts(self):
        t = TemporalPredictor()
        t.begin_execution()
        t.record(0, 1.5)
        t.record(1, 2.5)
        t.begin_execution()
        assert t.predict(0) == 1.5
        assert t.predict(1) == 2.5
        assert t.predict(2) is None

    def test_validate_uses_acceptable_range(self):
        t = TemporalPredictor()
        t.begin_execution()
        t.record(0, 10.0)
        t.begin_execution()
        assert t.validate(0, 11.0, acceptable_range=0.2)
        assert not t.validate(0, 20.0, acceptable_range=0.2)
        assert t.predictions == 2 and t.hits == 1
        assert t.hit_rate == 0.5

    def test_entry_cap(self):
        t = TemporalPredictor(max_entries=2)
        t.begin_execution()
        for i in range(5):
            t.record(i, float(i))
        t.begin_execution()
        assert t.predict(0) == 0.0
        assert t.predict(4) is None

    def test_charge_nonempty(self):
        assert TemporalPredictor().charge()


class TestRuntimeIntegration:
    def run_executions(self, values_per_exec, ar=0.2, temporal=True):
        config = RSkipConfig(acceptable_range=ar, tuning_parameter=0.05,
                             temporal=temporal)
        runtime = LoopRuntime("t", config)
        for values in values_per_exec:
            runtime.enter()
            for i, v in enumerate(values):
                runtime.observe(Element(i, v, 100 + i))
            runtime.flush()
            # drain the re-computation queue (clean re-computes confirm)
            while True:
                idx, _ = runtime.fetch()
                if idx < 0:
                    break
                runtime.resolve(values[idx])
        return runtime

    def test_repeated_execution_skips_trendless_data(self):
        # alternating series: interpolation can never validate it
        jagged = [(-1.0) ** i * (5.0 + i % 3) for i in range(40)]
        without = self.run_executions([jagged, jagged], temporal=False)
        with_t = self.run_executions([jagged, jagged], temporal=True)
        assert with_t.stats.skipped_temporal > 0
        assert with_t.stats.skip_rate > without.stats.skip_rate + 0.2

    def test_first_execution_gains_nothing(self):
        jagged = [(-1.0) ** i * 5.0 for i in range(30)]
        runtime = self.run_executions([jagged], temporal=True)
        assert runtime.stats.skipped_temporal == 0

    def test_changed_data_not_falsely_validated(self):
        first = [(-1.0) ** i * 5.0 for i in range(30)]
        second = [v * 10.0 for v in first]  # far outside AR20
        runtime = self.run_executions([first, second], ar=0.2, temporal=True)
        assert runtime.stats.skipped_temporal == 0

    def test_end_to_end_output_preserved(self):
        golden_module = build_dot_module()
        _, golden_mem = run_main(golden_module, [6, 8])
        module = build_dot_module()
        app = apply_rskip(module, RSkipConfig(temporal=True))
        verify_module(module)
        _, mem = run_main(module, [6, 8], intrinsics=app.intrinsics())
        assert mem.read_global("out", 6) == golden_mem.read_global("out", 6)
