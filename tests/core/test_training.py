import math

import pytest

from repro.core import (
    Element,
    RSkipConfig,
    RskipRuntime,
    collect_traces,
    enable_recording,
    slope_changes_of,
    train_interpolation,
    train_profiles,
)


def trace_of(values, with_args=False):
    return [
        Element(i, v, 100 + i, args=(v, 1.0) if with_args else ())
        for i, v in enumerate(values)
    ]


class TestSlopeChanges:
    def test_line_has_zero_changes(self):
        changes = slope_changes_of([2.0 * i for i in range(10)])
        assert all(c == pytest.approx(0.0) for c in changes)
        assert len(changes) == 8

    def test_kink_registers(self):
        changes = slope_changes_of([0.0, 1.0, 2.0, 10.0])
        assert changes[-1] > 1.0

    def test_short_sequences(self):
        assert slope_changes_of([]) == []
        assert slope_changes_of([1.0, 2.0]) == []


class TestTrainInterpolation:
    def test_smooth_data_prefers_large_tp(self):
        config = RSkipConfig(window=16)
        traces = [trace_of([math.sin(i / 30.0) * 5 + 10 for i in range(120)])]
        qos, default_tp = train_interpolation(traces, config)
        assert default_tp >= 1.0  # long trends: extend aggressively

    def test_learned_tp_beats_bad_fixed_tp(self):
        from repro.core import simulate

        config = RSkipConfig(window=16, acceptable_range=0.2)
        values = [math.sin(i / 25.0) * 3 + 6 + (0.4 if i % 9 == 0 else 0) for i in range(160)]
        _, tp = train_interpolation([trace_of(values)], config)
        grid_rates = [simulate(values, g, 0.2).skip_rate for g in config.tp_grid]
        # the learned default TP cannot be the worst choice on the grid
        assert simulate(values, tp, 0.2).skip_rate >= min(grid_rates)
        assert tp in config.tp_grid

    def test_signature_table_populated(self):
        config = RSkipConfig(window=12)
        values = [float(i % 13) for i in range(120)]
        qos, _ = train_interpolation([trace_of(values)], config)
        assert len(qos) >= 1

    def test_empty_traces(self):
        config = RSkipConfig()
        qos, tp = train_interpolation([], config)
        assert tp == config.tuning_parameter
        assert len(qos) == 0


class TestTrainProfiles:
    def test_profiles_per_loop(self):
        config = RSkipConfig(window=12)
        traces = {
            "f:loopA": [trace_of([1.0 * i for i in range(60)])],
            "f:loopB": [trace_of([math.sin(i / 5.0) for i in range(60)])],
        }
        profiles, reports = train_profiles(traces, config)
        assert set(profiles) == {"f:loopA", "f:loopB"}
        assert {r.key for r in reports} == set(profiles)
        assert all(r.elements == 60 for r in reports)

    def test_memo_built_only_for_requested_keys(self):
        config = RSkipConfig(window=12)
        traces = {
            "f:call": [trace_of([2.0 + (i % 3) for i in range(90)], with_args=True)],
            "f:red": [trace_of([1.0 * i for i in range(60)])],
        }
        profiles, reports = train_profiles(traces, config, memo_keys=["f:call"])
        assert profiles["f:call"].memo is not None
        assert profiles["f:red"].memo is None
        call_report = next(r for r in reports if r.key == "f:call")
        assert call_report.memo_bits is not None
        assert call_report.memo_accuracy > 0.5

    def test_memo_respects_config_toggle(self):
        config = RSkipConfig(window=12, memoization=False)
        traces = {"f:call": [trace_of([1.0] * 60, with_args=True)]}
        profiles, _ = train_profiles(traces, config, memo_keys=["f:call"])
        assert profiles["f:call"].memo is None


class TestRecording:
    def test_enable_and_collect(self):
        registry = RskipRuntime(RSkipConfig())
        runtime = registry.add_loop(0, "f:loop")
        enable_recording(registry)
        runtime.enter()
        runtime.observe(Element(0, 1.0, 100))
        runtime.observe(Element(1, 2.0, 101))
        traces = collect_traces(registry)
        assert len(traces["f:loop"]) == 1
        assert [e.value for e in traces["f:loop"][0]] == [1.0, 2.0]
