"""Error paths of the RSkip transform: targets the detector accepts but
the outliner must refuse, with a clear diagnosis."""
import pytest

from repro.core import RSkipConfig, apply_rskip
from repro.core.rskip import RskipError
from repro.ir import (
    CmpPred,
    F64,
    Function,
    I64,
    IRBuilder,
    Instr,
    Module,
    Opcode,
    Reg,
    i64,
    verify_module,
)


def expensive_region(b, i, acc_init=0.0):
    """A reduction loop expensive enough to pass the cost threshold."""
    acc = b.mov(acc_init, hint="acc")
    with b.loop(0, 24, hint="red") as j:
        b.mov(b.fadd(acc, b.sitofp(b.add(i, j))), dest=acc)
    return acc


def test_instructions_after_store_rejected():
    m = Module("m")
    m.add_global("out", 64)
    f = Function("main", [Reg("n", I64)], F64)
    m.add_function(f)
    b = IRBuilder(f)
    op = b.mov(b.global_addr("out"), hint="op")
    leak = b.mov(0.0, hint="leak")
    with b.loop(0, f.params[0], hint="T") as i:
        acc = expensive_region(b, i)
        b.store(acc, b.padd(op, i))
        # extra work after the synchronization point
        b.mov(b.fadd(leak, acc), dest=leak)
    b.ret(leak)
    verify_module(m)
    with pytest.raises(RskipError, match="instructions after the target store"):
        apply_rskip(m, RSkipConfig())


def test_store_block_with_conditional_exit_rejected():
    """The store block must fall through to the latch unconditionally."""
    m = Module("m")
    m.add_global("out", 64)
    f = Function("main", [Reg("n", I64)], F64)
    m.add_function(f)
    b = IRBuilder(f)
    op = b.mov(b.global_addr("out"), hint="op")
    with b.loop(0, f.params[0], hint="T") as i:
        acc = expensive_region(b, i)
        b.store(acc, b.padd(op, i))
    b.ret(0.0)
    verify_module(m)

    # surgically replace the store block's 'br latch' with a 'cbr'
    func = m.get_function("main")
    store_label = next(
        label for label in func.block_order()
        for ins in func.blocks[label].instrs
        if ins.op is Opcode.STORE
    )
    block = func.blocks[store_label]
    latch = block.terminator.labels[0]
    from repro.analysis import CFG, find_induction, find_loops

    cfg = CFG(func)
    loop = next(
        l for l in find_loops(func, cfg)
        if store_label in l.blocks and l.depth == 1
    )
    ivar = find_induction(func, loop, cfg).reg
    block.instrs[-1:] = [
        Instr(Opcode.CBR, args=(ivar,), labels=(latch, latch)),
    ]
    verify_module(m)
    with pytest.raises(RskipError, match="must end in 'br'"):
        apply_rskip(m, RSkipConfig())


def test_branch_leaving_region_rejected():
    """A 'continue'-style edge from mid-region to the latch cannot be
    outlined (the region would have two exits)."""
    m = Module("m")
    m.add_global("x", 64)
    m.add_global("out", 64)
    f = Function("main", [Reg("n", I64)], F64)
    m.add_function(f)
    b = IRBuilder(f)
    xp = b.mov(b.global_addr("x"), hint="xp")
    op = b.mov(b.global_addr("out"), hint="op")
    with b.loop(0, f.params[0], hint="T") as i:
        acc = b.mov(0.0, hint="acc")
        with b.loop(0, 24, hint="red") as j:
            v = b.load(b.padd(xp, b.srem(j, 32)))
            b.mov(b.fadd(acc, v), dest=acc)
        b.store(acc, b.padd(op, i))
    b.ret(0.0)
    verify_module(m)

    # add a mid-region early exit straight to the latch
    func = m.get_function("main")
    from repro.analysis import detect_target_loops

    (target,) = detect_target_loops(func, m)
    entry_block = func.blocks[target.region_entry]
    latch = target.ind.update_block
    # rewrite the entry block's terminator into a conditional skip
    old_term = entry_block.instrs.pop()
    cond = Reg("skip.hack", I64)
    entry_block.append(Instr(Opcode.ICMP, dest=cond, args=(i64(0), i64(1)), pred=CmpPred.EQ))
    entry_block.append(Instr(Opcode.CBR, args=(cond,), labels=(latch, old_term.labels[0])))
    # the accumulator must still be defined on the skip path
    preheader = [
        l for l in func.block_order()
        if target.loop.header in func.blocks[l].successors()
        and l not in target.loop.blocks
    ]
    verify_module(m)  # may flag the acc path; loosen by defining acc earlier
    with pytest.raises(RskipError, match="leaves the region"):
        apply_rskip(m, RSkipConfig())


def test_rejected_target_reports_function_and_block():
    m = Module("m")
    m.add_global("out", 64)
    f = Function("main", [Reg("n", I64)], F64)
    m.add_function(f)
    b = IRBuilder(f)
    op = b.mov(b.global_addr("out"), hint="op")
    sink = b.mov(0.0, hint="sink")
    with b.loop(0, f.params[0], hint="T") as i:
        acc = expensive_region(b, i)
        b.store(acc, b.padd(op, i))
        b.mov(acc, dest=sink)
    b.ret(sink)
    verify_module(m)
    with pytest.raises(RskipError) as excinfo:
        apply_rskip(m, RSkipConfig())
    assert "main" in str(excinfo.value)
