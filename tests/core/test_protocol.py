"""Unit tests for the REPLAY/CKPT protocol runtimes and transform."""
import pytest

from repro.core.manager import Element, FaultLikelihoodSignal
from repro.core.protocol import (
    PROTOCOL_REGION_ATTR,
    CkptLoopRuntime,
    ProtocolRuntime,
    ReplayLoopRuntime,
    apply_protocol,
)
from repro.ir import verify_module
from repro.runtime import FaultDetectedError

from ..conftest import build_dot_module, run_main


def elem(i, value, addr=100):
    return Element(i, value, addr + i)


class TestReplayLoopRuntime:
    def test_only_sampled_windows_enqueue(self):
        rt = ReplayLoopRuntime("k", sample_period=2, window=4)
        rt.enter()
        for i in range(16):  # 4 windows of 4
            rt.observe(elem(i, float(i)))
        # windows 0 and 2 sampled, 1 and 3 skipped
        assert len(rt.queue) == 8
        assert rt.stats.phases == 2
        assert rt.stats.elements == 16

    def test_flush_closes_partial_window(self):
        rt = ReplayLoopRuntime("k", sample_period=1, window=4)
        rt.enter()
        for i in range(6):  # one full window + 2 leftovers
            rt.observe(elem(i, float(i)))
        assert len(rt.queue) == 4
        pending, _ = rt.flush()
        assert pending == 6
        assert rt.stats.phases == 2

    def test_resolve_match_returns_recorded_value(self):
        rt = ReplayLoopRuntime("k", sample_period=1, window=1)
        rt.enter()
        rt.observe(elem(0, 3.5))
        index, _ = rt.fetch()
        assert index == 0
        value, _ = rt.resolve(3.5)
        assert value == 3.5
        assert rt.stats.recomputed == 1
        assert rt.stats.recompute_mismatches == 0

    def test_resolve_mismatch_aborts(self):
        rt = ReplayLoopRuntime("k", sample_period=1, window=1)
        rt.enter()
        rt.observe(elem(0, 3.5))
        rt.fetch()
        with pytest.raises(FaultDetectedError):
            rt.resolve(4.0)
        assert rt.stats.recompute_mismatches == 1

    def test_replay_never_votes(self):
        """need2 is always 0; a resolve2 call can only come from a
        corrupted branch, which REPLAY turns into a detection."""
        rt = ReplayLoopRuntime("k", sample_period=1, window=1)
        rt.enter()
        rt.observe(elem(0, 1.0))
        rt.fetch()
        pending, _ = rt.need2()
        assert pending == 0
        with pytest.raises(FaultDetectedError):
            rt.resolve2(1.0)
        assert rt.stats.recompute_mismatches == 1

    def test_sample_period_validated(self):
        with pytest.raises(ValueError):
            ReplayLoopRuntime("k", sample_period=0, window=4)


class TestCkptLoopRuntime:
    def test_commits_at_base_interval_without_predictor(self):
        rt = CkptLoopRuntime("k", interval=4, predictor=False)
        rt.enter()
        for i in range(10):
            rt.observe(elem(i, 7.0))  # jumpy or not: no signal
        rt.flush()
        assert rt.commit_intervals == [4, 4, 2]
        assert rt.stats.phases == 3
        assert rt.stats.tp_adjustments == 0
        assert len(rt.queue) == 10  # everything reaches the commit drain

    def test_linear_stream_keeps_base_interval(self):
        rt = CkptLoopRuntime("k", interval=4, predictor=True)
        rt.enter()
        for i in range(12):
            rt.observe(elem(i, 1.0 + 0.1 * i))  # perfectly extrapolable
        assert rt.commit_intervals == [4, 4, 4]
        assert rt.stats.tp_adjustments == 0

    def test_jumpy_stream_shrinks_interval(self):
        rt = CkptLoopRuntime("k", interval=8, predictor=True)
        rt.enter()
        values = [0.0, 100.0, -50.0, 400.0, 3.0, -90.0, 250.0, 1.0,
                  777.0, -3.0, 55.0, 0.5, 123.0, -8.0, 90.0, 2.0]
        for i, v in enumerate(values):
            rt.observe(elem(i, v))
        rt.flush()
        assert rt.stats.tp_adjustments > 0
        assert min(rt.commit_intervals) < 8
        # the signal-driven run commits more often than the fixed one
        fixed = CkptLoopRuntime("k", interval=8, predictor=False)
        fixed.enter()
        for i, v in enumerate(values):
            fixed.observe(elem(i, v))
        fixed.flush()
        assert len(rt.commit_intervals) > len(fixed.commit_intervals)

    def test_vote_corrects_recorded_value(self):
        rt = CkptLoopRuntime("k", interval=1, predictor=False)
        rt.enter()
        rt.observe(elem(0, 9.0))  # recorded (corrupted) value
        rt.fetch()
        value, _ = rt.resolve(5.0)  # first re-execution disagrees
        assert value == 5.0
        assert rt.need2()[0] == 1
        voted, _ = rt.resolve2(5.0)  # second agrees with the first
        assert voted == 5.0
        assert rt.stats.corrected_master == 1
        assert rt.need2()[0] == 0

    def test_vote_corrects_first_reexecution(self):
        rt = CkptLoopRuntime("k", interval=1, predictor=False)
        rt.enter()
        rt.observe(elem(0, 9.0))
        rt.fetch()
        rt.resolve(5.0)
        voted, _ = rt.resolve2(9.0)  # second agrees with the record
        assert voted == 9.0
        assert rt.stats.corrected_shadow == 1

    def test_vote_unresolved_keeps_last_reexecution(self):
        rt = CkptLoopRuntime("k", interval=1, predictor=False)
        rt.enter()
        rt.observe(elem(0, 9.0))
        rt.fetch()
        rt.resolve(5.0)
        voted, _ = rt.resolve2(7.0)  # three-way disagreement
        assert voted == 7.0
        assert rt.stats.unresolved_votes == 1

    def test_reset_clears_interval_trace(self):
        rt = CkptLoopRuntime("k", interval=2, predictor=False)
        rt.enter()
        for i in range(4):
            rt.observe(elem(i, 1.0))
        assert rt.commit_intervals
        rt.reset()
        assert rt.commit_intervals == []
        assert rt.stats.elements == 0

    def test_interval_validated(self):
        with pytest.raises(ValueError):
            CkptLoopRuntime("k", interval=0)


class TestFaultLikelihoodSignal:
    def test_linear_stream_has_zero_likelihood(self):
        sig = FaultLikelihoodSignal(tolerance=0.2, window=8)
        for i in range(20):
            sig.observe(1.0 + 0.5 * i)
        assert sig.likelihood() == 0.0
        assert sig.mispredictions == 0

    def test_jumps_raise_likelihood(self):
        sig = FaultLikelihoodSignal(tolerance=0.2, window=8)
        for v in [0.0, 1.0, 2.0, 500.0, 3.0, -200.0]:
            sig.observe(v)
        assert sig.likelihood() > 0.0
        assert sig.mispredictions > 0

    def test_deterministic_in_value_stream(self):
        values = [0.1 * ((i * 37) % 19) for i in range(40)]
        a = FaultLikelihoodSignal()
        b = FaultLikelihoodSignal()
        for v in values:
            a.observe(v)
            b.observe(v)
        assert a.likelihood() == b.likelihood()
        assert a.mispredictions == b.mispredictions


class TestProtocolTransform:
    @pytest.mark.parametrize("kind", ["replay", "ckpt"])
    def test_transform_marks_region_and_runs_clean(self, kind):
        golden, mem = run_main(build_dot_module(), [8, 8])
        golden_out = mem.read_global("out", 8)

        module = build_dot_module()
        app = apply_protocol(module, kind)
        verify_module(module)
        assert app.layouts, "dot module must yield a protocol target loop"
        body = module.get_function(app.layouts[0].body)
        assert body.attrs.get(PROTOCOL_REGION_ATTR) == kind

        result, mem = run_main(module, [8, 8], intrinsics=app.intrinsics())
        assert result.value == golden.value
        assert mem.read_global("out", 8) == golden_out
        stats = app.runtime.total_stats()
        assert stats.elements == 8
        assert stats.recompute_mismatches == 0

    def test_ckpt_commit_intervals_exposed_by_runtime(self):
        module = build_dot_module()
        app = apply_protocol(module, "ckpt", interval=3, predictor=False)
        run_main(module, [8, 8], intrinsics=app.intrinsics())
        assert app.runtime.commit_intervals() == [3, 3, 2]

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            ProtocolRuntime("voodoo")
