"""The emit/enabled/span contracts of the event layer."""
import pytest

from repro.obs import (
    Event,
    MemorySink,
    emit,
    enabled,
    install_sink,
    remove_sink,
    sink_installed,
    span,
)


class TestEmit:
    def test_disabled_by_default(self):
        assert not enabled()
        emit("skip", loop="main:l", count=1)  # dropped, not an error

    def test_events_reach_the_sink(self):
        with sink_installed(MemorySink(), run_id="r1") as sink:
            assert enabled()
            emit("skip", loop="main:l", count=3)
            emit("exec", elements=10, skipped=4)
        event = sink.events[0]
        assert (event.kind, event.loop, event.run) == ("skip", "main:l", "r1")
        assert event.payload == {"count": 3}
        assert sink.events[1].loop is None

    def test_seq_is_monotonic_and_restarts_per_install(self):
        with sink_installed(MemorySink()) as first:
            for _ in range(5):
                emit("skip")
        with sink_installed(MemorySink()) as second:
            emit("skip")
        assert [e.seq for e in first.events] == [0, 1, 2, 3, 4]
        assert second.events[0].seq == 0

    def test_second_install_raises(self):
        install_sink(MemorySink())
        with pytest.raises(RuntimeError, match="already installed"):
            install_sink(MemorySink())
        remove_sink()

    def test_remove_returns_the_sink(self):
        sink = MemorySink()
        install_sink(sink)
        assert remove_sink() is sink
        assert remove_sink() is None


class TestSpan:
    def test_noop_without_sink(self):
        with span("anything"):
            pass  # must not raise, must not require a sink

    def test_records_label_and_elapsed(self):
        with sink_installed(MemorySink()) as sink:
            with span("work"):
                pass
        assert len(sink.spans) == 1
        label, ms = sink.spans[0]
        assert label == "work" and ms >= 0.0

    def test_spans_never_enter_the_event_stream(self):
        """Wall-clock lives in the manifest channel only — the trace body
        stays deterministic."""
        with sink_installed(MemorySink()) as sink:
            with span("work"):
                emit("exec", elements=1, skipped=0)
        assert [e.kind for e in sink.events] == ["exec"]


class TestEventSerialization:
    def test_roundtrip(self):
        event = Event(7, "run1", "qos-disable", "main:l",
                      {"predictor": "memo", "recent_attempts": 64})
        assert Event.from_line(event.to_line()) == event

    def test_canonical_line_is_stable(self):
        """Key order and separators are pinned: equal events serialize to
        identical bytes, the foundation of trace byte-identity."""
        a = Event(0, "r", "skip", "l", {"b": 1, "a": 2})
        b = Event(0, "r", "skip", "l", {"a": 2, "b": 1})
        assert a.to_line() == b.to_line()
        assert " " not in a.to_line()
