"""Campaign tracing: per-shard files, deterministic merge, manifests."""
import os

import pytest

from repro.eval import Harness
from repro.eval.campaign_engine import run_campaign_parallel, run_campaigns
from repro.obs import RunManifest, load_trace
from repro.workloads import get_workload

SCALE = 0.35
TRIALS = 10


@pytest.fixture(scope="module")
def conv1d():
    return get_workload("conv1d")


@pytest.fixture(scope="module")
def conv1d_profiles(conv1d):
    return Harness(conv1d, scale=SCALE, timing=False).profiles_for(1.0)


def run_traced(conv1d, profiles, out, jobs, chunk=3):
    result = run_campaign_parallel(
        conv1d, "AR100", TRIALS, scale=SCALE, profiles=profiles,
        jobs=jobs, chunk=chunk, trace_out=out,
    )
    with open(out, "rb") as handle:
        return result, handle.read()


class TestTraceByteIdentity:
    def test_parallel_trace_matches_serial(self, conv1d, conv1d_profiles,
                                           tmp_path):
        """The headline contract: --jobs 1 and --jobs 2 produce
        byte-identical merged traces AND identical tallies."""
        serial, serial_bytes = run_traced(
            conv1d, conv1d_profiles, str(tmp_path / "serial.jsonl"), jobs=1)
        parallel, parallel_bytes = run_traced(
            conv1d, conv1d_profiles, str(tmp_path / "parallel.jsonl"), jobs=2)
        assert serial_bytes == parallel_bytes
        assert serial_bytes  # a trace was actually written
        assert dict(serial.tallies) == dict(parallel.tallies)
        assert (serial.caught, serial.detected, serial.false_negatives) == \
            (parallel.caught, parallel.detected, parallel.false_negatives)

    def test_chunking_does_not_change_the_trace(self, conv1d, conv1d_profiles,
                                                tmp_path):
        _, a = run_traced(conv1d, conv1d_profiles,
                          str(tmp_path / "c3.jsonl"), jobs=1, chunk=3)
        _, b = run_traced(conv1d, conv1d_profiles,
                          str(tmp_path / "c7.jsonl"), jobs=1, chunk=7)
        assert a == b


class TestTraceContents:
    def test_shards_manifest_and_events(self, conv1d, conv1d_profiles,
                                        tmp_path):
        out = str(tmp_path / "trace.jsonl")
        result, _ = run_traced(conv1d, conv1d_profiles, out, jobs=1, chunk=4)

        shard_dir = out + ".shards"
        shards = sorted(os.listdir(shard_dir))
        assert len(shards) == 3  # 10 trials in chunks of 4 -> 4+4+2

        events = load_trace(out)
        assert [e.seq for e in events] == list(range(len(events)))
        assert len({e.run for e in events}) == 1  # shards share one run id
        trials = [e for e in events if e.kind == "trial-outcome"]
        assert len(trials) == TRIALS
        assert [e.payload["trial"] for e in trials] == list(range(TRIALS))
        outcome_names = {o.name for o in result.tallies}
        assert {e.payload["outcome"] for e in trials} == outcome_names

        manifest = RunManifest.load(out)
        assert manifest is not None
        assert manifest.command == "campaign"
        assert manifest.events == len(events)
        assert manifest.totals["trials"] == TRIALS
        assert manifest.run == events[0].run
        assert len(manifest.spans) == 3  # one wall-clock span per shard
        assert manifest.fingerprints  # module fingerprint recorded

    def test_untraced_campaign_writes_nothing(self, conv1d, conv1d_profiles,
                                              tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        run_campaigns(
            [(conv1d, "AR100", conv1d_profiles)], trials=TRIALS, scale=SCALE,
            jobs=1,
        )
        assert os.listdir(tmp_path) == []
