"""Backend parity and the disabled-cost contract of the obs layer.

The compiled backend must be observationally equivalent to the reference
interpreter *including* the event stream: every predictor decision the
RSkip runtime takes (intrinsics run identically under both backends)
emits the same events in the same order.  And when no sink is installed,
instrumented code must not even construct payloads — pinned here by
making ``emit`` explode and running the whole instrumented path.
"""
import os

import pytest

from repro.difftest.oracles import PROTECTIONS, execute_module, module_copy
from repro.eval import Harness
from repro.ir.parser import parse_module
from repro.obs import MemorySink, sink_installed
from repro.workloads import get_workload

CORPUS_DIR = os.path.join(
    os.path.dirname(__file__), os.pardir, os.pardir, "difftest", "corpus"
)


def corpus_files():
    if not os.path.isdir(CORPUS_DIR):
        return []
    return sorted(f for f in os.listdir(CORPUS_DIR) if f.endswith(".ir"))


def event_stream(module, backend):
    """(kind, loop, payload) stream of one rskip-protected clean run."""
    work = module_copy(module)
    intrinsics = PROTECTIONS["rskip"](work)
    with sink_installed(MemorySink(capacity=1 << 16)) as sink:
        result = execute_module(work, intrinsics=intrinsics, backend=backend)
    events = [(e.kind, e.loop, e.payload) for e in sink.events]
    assert sink.dropped == 0
    return events, result


class TestBackendEventParity:
    @pytest.mark.parametrize("filename", corpus_files())
    def test_corpus_events_identical_ref_vs_compiled(self, filename):
        with open(os.path.join(CORPUS_DIR, filename), encoding="utf-8") as f:
            module = parse_module(f.read())
        ref_events, ref_result = event_stream(module, "ref")
        com_events, com_result = event_stream(module, "compiled")
        assert ref_events == com_events, filename
        assert ref_result.steps == com_result.steps, filename

    def test_workload_measurement_events_identical(self):
        """A full harness measurement (training + measured run) emits the
        same stream whichever backend serves the clean runs."""
        def stream(backend):
            os.environ["REPRO_BACKEND"] = backend
            from repro.runtime import set_default_backend

            set_default_backend(backend)
            try:
                workload = get_workload("conv1d")
                harness = Harness(workload, scale=0.35, timing=False)
                inp = workload.test_inputs(1, seed=18, scale=0.35)[0]
                with sink_installed(MemorySink(capacity=1 << 16)) as sink:
                    record = harness.run_scheme("AR100", inp)
                return ([(e.kind, e.loop, e.payload) for e in sink.events],
                        record.skip_rate)
            finally:
                os.environ.pop("REPRO_BACKEND", None)
                set_default_backend(None)

        ref_events, ref_skip = stream("ref")
        com_events, com_skip = stream("compiled")
        assert ref_events == com_events
        assert ref_skip == com_skip


class TestDisabledCost:
    def test_no_payload_construction_without_sink(self, monkeypatch):
        """Every instrumentation site must check ``enabled()`` *before*
        building kwargs: with emit booby-trapped, an untraced end-to-end
        run (training, measurement, campaign trial block) stays silent."""
        def explode(*args, **kwargs):
            raise AssertionError(
                "emit() reached with no sink installed — an instrumentation "
                "site is building payloads on the disabled path"
            )

        import repro.core.manager as manager
        import repro.core.training as training
        import repro.eval.fault_campaign as fault_campaign

        monkeypatch.setattr(manager, "obs_emit", explode)
        monkeypatch.setattr(training, "obs_emit", explode)
        monkeypatch.setattr(fault_campaign, "obs_emit", explode)

        workload = get_workload("conv1d")
        harness = Harness(workload, scale=0.35, timing=False)
        inp = workload.test_inputs(1, seed=18, scale=0.35)[0]
        record = harness.run_scheme("AR100", inp)
        assert record.stats is not None and record.stats.elements > 0

        from repro.eval import run_campaign

        campaign = run_campaign(workload, "AR100", 3, scale=0.35,
                                profiles=harness.profiles_for(1.0))
        assert campaign.trials == 3
