"""Trace-report rendering on synthetic event streams."""
from repro.obs import Event, RunManifest, render_trace_report
from repro.obs.report import _timeline


def ev(seq, kind, loop=None, **payload):
    return Event(seq, "run1", kind, loop, payload)


def synthetic_trace():
    return [
        ev(0, "exec", "main:l", execution=1, elements=100, skipped=80),
        ev(1, "exec", "main:l", execution=2, elements=100, skipped=20),
        ev(2, "phase-cut", "main:l", phase=1, start=0, end=9, points=10,
           interior_failures=1, memo_misses=0),
        ev(3, "skip", "main:l", predictor="interp", count=40, phase=1),
        ev(4, "skip", "main:l", predictor="memo", count=10, phase=1),
        ev(5, "recompute", "main:l", count=5, endpoints=2, phase=1),
        ev(6, "tp-adjust", "main:l", old=30.0, new=15.0, signature="s1"),
        ev(7, "qos-disable", "main:l", predictor="memo",
           recent_attempts=64, recent_hits=8, threshold=0.5),
        ev(8, "recovery", "main:l", stage="detect", index=3),
        ev(9, "recovery", "main:l", stage="vote", verdict="master", index=3),
        ev(10, "trial-outcome", workload="conv1d", scheme="AR100", trial=0,
           outcome="CORRECT", trap=None, detected=False, caught=True,
           false_negative=False),
        ev(11, "trial-outcome", workload="conv1d", scheme="AR100", trial=1,
           outcome="SDC", trap=None, detected=False, caught=False,
           false_negative=True),
        ev(12, "train-loop", "main:l", executions=5, elements=500,
           default_tp=30.0, qos_entries=4, memo=True),
    ]


class TestRenderTraceReport:
    def test_all_sections_render(self):
        text = render_trace_report(synthetic_trace())
        assert "trace: 13 events" in text
        assert "-- per-loop activity --" in text
        assert "skip-rate timeline" in text
        assert "QOS DISABLE [memo] at seq 7" in text
        assert "recent_attempts=64" in text  # the disable cause is spelled out
        assert "tp adjustments 1: 30.0 -> … -> 15.0" in text
        assert "recovery: 1 mismatches, 1 votes (master=1)" in text
        assert "-- SFI trials --" in text
        assert "conv1d/AR100: 2 trials" in text
        assert "CORRECT=1, SDC=1" in text
        assert "false negatives 1" in text
        assert "-- offline training --" in text
        assert "5 traces, 500 elements" in text

    def test_manifest_summary(self):
        manifest = RunManifest(
            run="r1", command="run", backend="compiled",
            params={"scale": 0.35, "config": "hidden"},
            fingerprints={"conv1d|AR100": "a" * 64},
            spans=[("train:main:l", 12.5)],
        )
        text = render_trace_report(synthetic_trace(), manifest)
        assert "command=run backend=compiled" in text
        assert "scale=0.35" in text
        assert "config" not in text.split("manifest:")[1].splitlines()[0]
        assert "module conv1d|AR100: aaaaaaaaaaaaaaaa…" in text
        assert "train:main:l" in text

    def test_empty_trace_renders(self):
        assert render_trace_report([]).startswith("trace: 0 events")


class TestTimeline:
    def test_one_char_per_execution_when_short(self):
        assert len(_timeline([0.0, 0.5, 1.0])) == 3
        assert _timeline([0.0])[0] == " "
        assert _timeline([1.0])[0] == "@"

    def test_long_runs_bucket_to_width(self):
        assert len(_timeline([0.5] * 500, width=60)) == 60

    def test_monotone_rates_render_monotone(self):
        chars = _timeline([i / 9 for i in range(10)])
        ramp = " .:-=+*#@"
        assert [ramp.index(c) for c in chars] == sorted(
            ramp.index(c) for c in chars)
