import pytest

from repro.obs import remove_sink


@pytest.fixture(autouse=True)
def no_leaked_sink():
    """The sink is process-global state: a test that fails mid-trace must
    not poison every test after it."""
    remove_sink()
    yield
    remove_sink()
