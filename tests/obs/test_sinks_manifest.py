"""Sinks, shard merging and run manifests."""
import json
import os

import pytest

from repro.obs import (
    Event,
    JsonlSink,
    MemorySink,
    RunManifest,
    emit,
    manifest_path_for,
    merge_traces,
    read_trace,
    run_id_for,
    sink_installed,
)


class TestMemorySink:
    def test_ring_is_bounded_and_counts_drops(self):
        sink = MemorySink(capacity=4)
        for i in range(10):
            sink.write(Event(i, "r", "skip"))
        assert len(sink.events) == 4
        assert sink.dropped == 6
        assert [e.seq for e in sink.events] == [6, 7, 8, 9]  # oldest first out

    def test_kinds_histogram(self):
        sink = MemorySink()
        for kind in ("skip", "skip", "exec"):
            sink.write(Event(0, "r", kind))
        assert sink.kinds() == {"skip": 2, "exec": 1}


class TestJsonlSink:
    def test_write_read_roundtrip(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        with sink_installed(JsonlSink(path)) as sink:
            emit("skip", loop="main:l", count=2)
            emit("trial-outcome", outcome="SDC", trial=3)
        sink.close()
        assert sink.count == 2
        events = read_trace(path)
        assert [e.kind for e in events] == ["skip", "trial-outcome"]
        assert events[1].payload == {"outcome": "SDC", "trial": 3}

    def test_creates_parent_directories(self, tmp_path):
        path = str(tmp_path / "deep" / "nested" / "t.jsonl")
        JsonlSink(path).close()
        assert os.path.exists(path)


class TestMergeTraces:
    def _shard(self, tmp_path, name, kinds):
        path = str(tmp_path / name)
        with JsonlSink(path) as sink:
            for i, kind in enumerate(kinds):
                sink.write(Event(i, "run", kind))
        return path

    def test_reseq_is_monotonic_across_shards(self, tmp_path):
        a = self._shard(tmp_path, "a.jsonl", ["skip", "exec"])
        b = self._shard(tmp_path, "b.jsonl", ["recovery"])
        out = str(tmp_path / "merged.jsonl")
        count = merge_traces([a, b], out)
        merged = read_trace(out)
        assert count == 3
        assert [e.seq for e in merged] == [0, 1, 2]
        assert [e.kind for e in merged] == ["skip", "exec", "recovery"]

    def test_equal_content_merges_byte_identically(self, tmp_path):
        """However events were sharded, equal content in equal order makes
        equal bytes — what pins parallel == serial campaign traces."""
        kinds = ["skip", "exec", "recovery", "phase-cut"]
        one = self._shard(tmp_path, "whole.jsonl", kinds)
        first = self._shard(tmp_path, "h1.jsonl", kinds[:2])
        second = self._shard(tmp_path, "h2.jsonl", kinds[2:])
        out_a, out_b = str(tmp_path / "a.out"), str(tmp_path / "b.out")
        merge_traces([one], out_a)
        merge_traces([first, second], out_b)
        with open(out_a, "rb") as fa, open(out_b, "rb") as fb:
            assert fa.read() == fb.read()

    def test_missing_shard_fails_loudly_with_hint(self, tmp_path):
        a = self._shard(tmp_path, "a.jsonl", ["skip"])
        out = str(tmp_path / "merged.jsonl")
        with pytest.raises(FileNotFoundError, match="delete the checkpoint"):
            merge_traces([a, str(tmp_path / "gone.jsonl")], out,
                         missing_hint="delete the checkpoint")
        assert not os.path.exists(out)
        assert not os.path.exists(out + ".tmp")


class TestRunManifest:
    def test_write_load_roundtrip(self, tmp_path):
        trace = str(tmp_path / "t.jsonl")
        RunManifest(
            run="abc123", command="run", backend="compiled",
            params={"scale": 0.35}, fingerprints={"w|AR50": "f" * 64},
            totals={"elements": 100}, events=7, spans=[("train:l", 1.5)],
        ).write(trace)
        loaded = RunManifest.load(trace)
        assert loaded.run == "abc123"
        assert loaded.params == {"scale": 0.35}
        assert loaded.spans == [("train:l", 1.5)]
        assert loaded.events == 7
        assert loaded.written_at > 0

    def test_load_missing_returns_none(self, tmp_path):
        assert RunManifest.load(str(tmp_path / "none.jsonl")) is None

    def test_version_mismatch_raises(self, tmp_path):
        trace = str(tmp_path / "t.jsonl")
        path = manifest_path_for(trace)
        with open(path, "w", encoding="utf-8") as handle:
            json.dump({"version": 999, "run": "x", "command": "run"}, handle)
        with pytest.raises(ValueError, match="unsupported manifest version"):
            RunManifest.load(trace)


class TestRunId:
    def test_deterministic_and_parameter_sensitive(self):
        assert run_id_for("run", "lud", 0.35) == run_id_for("run", "lud", 0.35)
        assert run_id_for("run", "lud", 0.35) != run_id_for("run", "lud", 0.45)
        assert len(run_id_for("x")) == 12
