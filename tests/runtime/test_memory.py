import pytest

from repro.ir import Module
from repro.runtime import Memory, SegfaultError


class TestBounds:
    def test_null_guard(self):
        mem = Memory(64)
        for addr in range(0, 8):
            with pytest.raises(SegfaultError):
                mem.load(addr)

    def test_out_of_range(self):
        mem = Memory(64)
        with pytest.raises(SegfaultError):
            mem.load(64)
        with pytest.raises(SegfaultError):
            mem.store(-1, 1.0)

    def test_float_addresses(self):
        mem = Memory(64)
        mem.store(10.0, 3.5)  # integral float address is fine
        assert mem.load(10) == 3.5
        with pytest.raises(SegfaultError, match="non-integer"):
            mem.load(10.5)

    def test_non_numeric_address(self):
        mem = Memory(64)
        with pytest.raises(SegfaultError, match="invalid address"):
            mem.load("x")

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            Memory(0)


class TestAllocation:
    def test_bump_allocation_disjoint(self):
        mem = Memory(128)
        a = mem.allocate(16)
        b = mem.allocate(16)
        assert b >= a + 16

    def test_out_of_memory(self):
        mem = Memory(64)
        with pytest.raises(SegfaultError, match="out of memory"):
            mem.allocate(1000)

    def test_non_positive_allocation(self):
        mem = Memory(64)
        with pytest.raises(SegfaultError):
            mem.allocate(0)


class TestGlobals:
    def make_module(self):
        m = Module("m")
        m.add_global("a", 8, init=[1.0, 2.0])
        m.add_global("b", 4)
        return m

    def test_layout_and_init(self):
        mem = Memory(128)
        mem.load_globals(self.make_module())
        a = mem.global_addr("a")
        assert mem.load(a) == 1.0 and mem.load(a + 1) == 2.0
        assert mem.load(a + 2) == 0.0  # zero padded
        assert mem.global_addr("b") >= a + 8

    def test_unknown_global(self):
        mem = Memory(64)
        with pytest.raises(SegfaultError, match="unknown global"):
            mem.global_addr("ghost")

    def test_array_helpers(self):
        mem = Memory(128)
        mem.load_globals(self.make_module())
        mem.write_global("b", [4.0, 5.0])
        assert mem.read_global("b", 2) == [4.0, 5.0]
        assert mem.read_global("b", 1, offset=1) == [5.0]

    def test_array_bounds_checked(self):
        mem = Memory(64)
        with pytest.raises(SegfaultError):
            mem.write_array(60, [1.0] * 10)
        with pytest.raises(SegfaultError):
            mem.read_array(0, 4)
