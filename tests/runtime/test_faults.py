import math
import random

import pytest
from hypothesis import given, strategies as st

from repro.runtime import (
    ADVERSARIAL_KIND_WEIGHTS,
    DEFAULT_KIND_WEIGHTS,
    FAULT_KINDS,
    FaultPlan,
    Interpreter,
    Region,
    SegfaultError,
    TrapError,
    flip_float,
    flip_int,
    flip_value,
    random_plan,
)

from ..conftest import build_dot_module, run_main, seed_memory


class TestBitFlips:
    @given(st.integers(min_value=-(2**63), max_value=2**63 - 1), st.integers(0, 63))
    def test_flip_int_is_involution(self, value, bit):
        assert flip_int(flip_int(value, bit), bit) == value

    @given(st.floats(allow_nan=False, allow_infinity=False), st.integers(0, 63))
    def test_flip_float_is_involution(self, value, bit):
        out = flip_float(flip_float(value, bit), bit)
        assert out == value or (math.isnan(out) and math.isnan(value))

    def test_flip_int_stays_in_64_bits(self):
        v = flip_int(0, 63)
        assert -(2**63) <= v < 2**63
        assert v < 0  # sign bit set

    def test_flip_changes_value(self):
        assert flip_int(5, 0) != 5
        assert flip_float(1.0, 52) != 1.0

    def test_flip_value_dispatch(self):
        assert isinstance(flip_value(3, 1), int)
        assert isinstance(flip_value(3.0, 1), float)
        assert flip_value("not numeric", 1) == "not numeric"

    def test_low_mantissa_flip_is_small(self):
        """Low mantissa bits perturb within tiny relative error — the raw
        material of RSkip's false negatives."""
        v = 123.456
        flipped = flip_float(v, 2)
        assert abs(flipped - v) / v < 1e-12

    def test_flip_int_high_bits(self):
        """Bits 62 and 63 exercise the two's-complement re-fold: bit 62
        stays positive, bit 63 flips the sign, and both round-trip."""
        assert flip_int(0, 62) == 2**62
        assert flip_int(0, 63) == -(2**63)
        assert flip_int(-1, 63) == 2**63 - 1
        for bit in (62, 63):
            for v in (0, 1, -1, 2**63 - 1, -(2**63)):
                flipped = flip_int(v, bit)
                assert -(2**63) <= flipped < 2**63
                assert flip_int(flipped, bit) == v

    def test_flip_int_bit_wraps_mod_64(self):
        """Bit indices are masked to 64 positions, not shifted past the
        word: bit 64 is bit 0, bit 127 is bit 63."""
        assert flip_int(0, 64) == flip_int(0, 0) == 1
        assert flip_int(0, 127) == flip_int(0, 63)

    def test_flip_float_nan_and_inf_survive(self):
        """NaN and infinity pack fine; flips move them around the IEEE
        encoding space instead of crashing the injector."""
        assert math.isnan(flip_float(float("nan"), 0))  # mantissa stays set
        assert flip_float(float("inf"), 63) == float("-inf")
        # clearing an exponent bit of +inf yields a finite double
        assert math.isfinite(flip_float(float("inf"), 62))

    def test_flip_float_exponent_flip_of_zero(self):
        assert flip_float(0.0, 63) == 0.0  # sign bit: -0.0 == 0.0
        assert flip_float(0.0, 0) > 0.0    # subnormal, not zero


class TestPlans:
    def test_plan_validation(self):
        with pytest.raises(ValueError):
            FaultPlan(step=-1)
        with pytest.raises(ValueError):
            FaultPlan(step=0, kind="meteor")

    def test_random_plan_in_range(self):
        rng = random.Random(0)
        for _ in range(200):
            plan = random_plan(rng, 1000)
            assert 0 <= plan.step < 1000
            assert 0 <= plan.bit < 64
            assert plan.kind in ("value", "branch", "addr")

    def test_random_plan_kind_mix(self):
        rng = random.Random(1)
        kinds = [random_plan(rng, 100).kind for _ in range(2000)]
        assert kinds.count("value") > 1500
        assert kinds.count("branch") > 20
        assert kinds.count("addr") > 20

    def test_malformed_kind_weights_rejected(self):
        rng = random.Random(0)
        with pytest.raises(ValueError, match="kind_weights"):
            random_plan(rng, 100, kind_weights=(("value", 0.5), ("branch", 0.2)))
        with pytest.raises(ValueError, match="kind_weights"):
            random_plan(rng, 100, kind_weights=(("value", 1.5), ("branch", -0.5)))
        with pytest.raises(ValueError, match="kind_weights"):
            random_plan(rng, 100, kind_weights=(("value", 0.0), ("branch", 1.0)))

    def test_default_kind_weights_still_accepted(self):
        rng = random.Random(0)
        plan = random_plan(rng, 100, kind_weights=DEFAULT_KIND_WEIGHTS)
        assert plan.kind in ("value", "branch", "addr")

    def test_flip_float_unpackable_value_is_masked(self):
        """A register whose value cannot round-trip through an IEEE-754
        double (a Python bignum reaching the float flipper) is left
        unchanged rather than silently zeroed: the flip is
        architecturally masked."""
        huge = 10**400
        assert flip_float(huge, 13) == huge

    def test_empty_region_rejected(self):
        with pytest.raises(ValueError):
            random_plan(random.Random(0), 0)

    def test_skip_kinds_accepted(self):
        for kind in ("skip", "cf"):
            assert FaultPlan(step=0, kind=kind).burst_len == 1
        assert FaultPlan(step=0, kind="skip-burst", burst_len=3).burst_len == 3

    def test_burst_len_window_validated(self):
        """Regression: a zero/negative burst used to arm a skip window
        that never closed, silently dropping the rest of the run."""
        with pytest.raises(ValueError, match="burst_len"):
            FaultPlan(step=0, kind="skip-burst", burst_len=0)
        with pytest.raises(ValueError, match="burst_len"):
            FaultPlan(step=0, kind="skip-burst", burst_len=-2)

    def test_burst_len_rejected_on_non_burst_kinds(self):
        for kind in ("value", "branch", "addr", "skip", "cf"):
            with pytest.raises(ValueError, match="burst_len"):
                FaultPlan(step=0, kind=kind, burst_len=2)

    def test_bit_and_pick_windows_validated(self):
        with pytest.raises(ValueError, match="bit"):
            FaultPlan(step=0, bit=64)
        with pytest.raises(ValueError, match="bit"):
            FaultPlan(step=0, bit=-1)
        with pytest.raises(ValueError, match="pick"):
            FaultPlan(step=0, pick=1.5)
        with pytest.raises(ValueError, match="pick"):
            FaultPlan(step=0, pick=-0.1)

    def test_adversarial_weights_draw_all_kinds(self):
        rng = random.Random(7)
        plans = [random_plan(rng, 500, ADVERSARIAL_KIND_WEIGHTS)
                 for _ in range(2000)]
        kinds = {p.kind for p in plans}
        assert kinds == set(FAULT_KINDS)
        for plan in plans:
            if plan.kind == "skip-burst":
                assert 2 <= plan.burst_len < 5
            else:
                assert plan.burst_len == 1

    def test_burst_draw_does_not_shift_old_kind_streams(self):
        """The burst length is drawn *last*, so at a seed where the kind
        draw lands on a classic kind, the (step, bit, pick) triple matches
        what the pre-skip fault model drew from the same rng state."""
        for seed in range(50):
            a, b = random.Random(seed), random.Random(seed)
            old = random_plan(a, 300, DEFAULT_KIND_WEIGHTS)
            x = b.random()  # consume the kind draw like random_plan does
            assert (old.step, old.bit, old.pick) == (
                b.randrange(300), b.randrange(64), b.random())
            del x


class TestRegion:
    def test_matching(self):
        region = Region(funcs={"g"}, blocks={("main", "loop")})
        assert region.contains("g", "anything")
        assert region.contains("main", "loop")
        assert not region.contains("main", "other")
        assert bool(region)
        assert not bool(Region())


class TestInjection:
    def _golden(self):
        module = build_dot_module()
        result, mem = run_main(module, [6, 8])
        return mem.read_global("out", 6)

    def _faulted(self, plan):
        module = build_dot_module()
        mem = seed_memory(module)
        interp = Interpreter(module, memory=mem, fault_plan=plan, max_steps=2_000_000)
        try:
            interp.run("main", [6, 8])
        except TrapError:
            return None
        return mem.read_global("out", 6)

    def test_deterministic_given_plan(self):
        plan = FaultPlan(step=500, kind="value", bit=40, pick=0.3)
        out1 = self._faulted(plan)
        out2 = self._faulted(FaultPlan(step=500, kind="value", bit=40, pick=0.3))
        assert out1 == out2

    def test_value_fault_can_corrupt_output(self):
        golden = self._golden()
        corrupted = 0
        for k, step in enumerate(range(50, 650, 40)):
            pick = (k * 0.07) % 1.0
            out = self._faulted(FaultPlan(step=step, kind="value", bit=51, pick=pick))
            if out is None or out != golden:
                corrupted += 1
        assert corrupted > 0

    def test_some_faults_are_masked(self):
        golden = self._golden()
        masked = 0
        for step in range(50, 650, 40):
            out = self._faulted(FaultPlan(step=step, kind="value", bit=1, pick=0.1))
            if out is not None and out == golden:
                masked += 1
        assert masked > 0

    def test_branch_fault_changes_control(self):
        golden = self._golden()
        differing = 0
        for step in (100, 200, 300):
            out = self._faulted(FaultPlan(step=step, kind="branch", bit=0, pick=0.0))
            if out is None or out != golden:
                differing += 1
        assert differing > 0

    def test_addr_fault_can_segfault(self):
        module = build_dot_module()
        mem = seed_memory(module)
        plan = FaultPlan(step=100, kind="addr", bit=22, pick=0.0)
        interp = Interpreter(module, memory=mem, fault_plan=plan, max_steps=2_000_000)
        with pytest.raises(SegfaultError):
            interp.run("main", [6, 8])

    def test_region_restricted_injection(self):
        """A fault stepped inside a region hits only region instructions."""
        module = build_dot_module()
        inner = {l for l in module.get_function("main").blocks if l.startswith("inner")}
        region = Region(blocks={("main", l) for l in inner})
        mem = seed_memory(module)
        counting = Interpreter(module, memory=mem, fault_region=region)
        counting.run("main", [6, 8])
        total = counting.region_steps
        assert total > 0
        # injecting at the last region step must not raise "never fired"
        mem2 = seed_memory(module)
        interp = Interpreter(
            module,
            memory=mem2,
            fault_plan=FaultPlan(step=total - 1, kind="value", bit=3, pick=0.5),
            fault_region=region,
            max_steps=2_000_000,
        )
        try:
            interp.run("main", [6, 8])
        except TrapError:
            pass
        assert not interp._fault_pending
