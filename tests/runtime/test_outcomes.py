import math

from repro.runtime import Outcome, classify_output, outputs_equal


class TestOutputsEqual:
    def test_exact_equality_required(self):
        assert outputs_equal([1.0, 2.0], [1.0, 2.0])
        assert not outputs_equal([1.0], [1.0 + 1e-15])

    def test_length_mismatch(self):
        assert not outputs_equal([1.0], [1.0, 2.0])

    def test_nan_positionally_equal(self):
        assert outputs_equal([math.nan, 1.0], [math.nan, 1.0])
        assert not outputs_equal([math.nan], [1.0])

    def test_mixed_int_float(self):
        assert outputs_equal([1, 2.0], [1.0, 2])


class TestClassify:
    def test_correct(self):
        assert classify_output([1.0], [1.0]) is Outcome.CORRECT

    def test_small_error_is_sdc(self):
        """The paper counts even small output errors as bad quality."""
        assert classify_output([1.0], [1.0000001]) is Outcome.SDC

    def test_outcome_labels(self):
        assert str(Outcome.CORE_DUMP) == "Core dump"
        assert str(Outcome.SDC) == "SDC"
