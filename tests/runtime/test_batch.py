"""Lane semantics of the batch engine (`repro.runtime.batch`).

Every observable of a batched lane — return value, trap kind, step and
region-step counts, final memory — must match what the reference
interpreter produces for the same program and fault plan run alone.
The difftest O5 oracle fuzzes this property; these tests pin the named
divergence-handling cases: a lane trapping while the rest of the batch
runs on, every lane hanging against the step budget, and a single-lane
batch degenerating to a plain trial.
"""
import pytest

from repro.ir.parser import parse_module
from repro.ir.verifier import verify_module
from repro.runtime.batch import SCALAR_CUTOFF, BatchExecutor
from repro.runtime.errors import HangError, SegfaultError
from repro.runtime.faults import FaultPlan, Region
from repro.runtime.interpreter import Interpreter
from repro.runtime.memory import Memory

LOOP_SUM = """
module batch_loop_sum

global @a 8 f64 = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]
global @out 8 f64

func @main() -> f64 {
entry:
  %ap = mov @a
  %op = mov @out
  %sum = mov 0.0:f64
  %i = mov 0:i64
  br head
head:
  %c = icmp lt %i, 8:i64
  cbr %c, body, exit
body:
  %addr = add %ap, %i
  %x = load %addr : f64
  %oaddr = add %op, %i
  store %x, %oaddr
  %nsum = fadd %sum, %x
  %sum = mov %nsum
  %ni = add %i, 1:i64
  %i = mov %ni
  br head
exit:
  ret %sum
}
"""

SPIN = """
module batch_spin

func @main() -> f64 {
entry:
  %i = mov 0:i64
  br head
head:
  %c = icmp lt %i, 1:i64
  cbr %c, head, exit
exit:
  ret 0.0:f64
}
"""


def _load(text):
    module = parse_module(text)
    verify_module(module)
    return module


def _region(module):
    return Region(funcs=tuple(module.functions))


def _ref_trial(module, plan, region, max_steps=100_000):
    """One reference-interpreter trial, reduced to the lane observables."""
    memory = Memory()
    interp = Interpreter(
        module, memory=memory, max_steps=max_steps,
        fault_plan=plan, fault_region=region)
    trap = None
    value = None
    try:
        value = interp.run("main", []).value
    except SegfaultError:
        trap = "segfault"
    except HangError:
        trap = "hang"
    return trap, value, interp.steps, interp.region_steps, memory


class TestCleanLanes:
    def test_all_lanes_reproduce_the_interpreter(self):
        module = _load(LOOP_SUM)
        _, value, steps, rsteps, memory = _ref_trial(
            module, None, _region(module))
        lanes = SCALAR_CUTOFF + 4  # force the lockstep path
        executor = BatchExecutor(module, Memory(), lanes,
                                 fault_region=_region(module))
        for res in executor.run("main", []):
            assert res.trap is None and not res.detected
            assert res.finished
            assert res.value == value == pytest.approx(36.0)
            assert (res.steps, res.region_steps) == (steps, rsteps)
        for lane in range(lanes):
            assert executor.lane_memory(lane).read_global("out", 8) == \
                memory.read_global("out", 8)

    def test_single_lane_batch_is_a_plain_trial(self):
        module = _load(LOOP_SUM)
        region = _region(module)
        plan = FaultPlan(step=9, kind="value", bit=13, pick=0.4)
        trap, value, steps, rsteps, memory = _ref_trial(module, plan, region)
        executor = BatchExecutor(module, Memory(), 1, fault_plans=[plan],
                                 fault_region=region, max_steps=100_000)
        (res,) = executor.run("main", [])
        assert (res.trap, res.value, res.steps, res.region_steps) == \
            (trap, value, steps, rsteps)
        if trap is None:
            assert executor.lane_memory(0).read_global("out", 8) == \
                memory.read_global("out", 8)


class TestDivergence:
    def test_lane0_traps_while_the_rest_run_on(self):
        """An address fault segfaults lane 0; the surviving lanes must
        retire it and still finish with the clean answer and step count."""
        module = _load(LOOP_SUM)
        region = _region(module)
        # bit 22 lands the next memory access far outside the template
        trap_plan = FaultPlan(step=6, kind="addr", bit=22)
        ref_rows = [_ref_trial(module, trap_plan, region),
                    _ref_trial(module, None, region)]
        assert ref_rows[0][0] == "segfault"

        lanes = SCALAR_CUTOFF + 4
        plans = [trap_plan] + [None] * (lanes - 1)
        executor = BatchExecutor(module, Memory(), lanes, fault_plans=plans,
                                 fault_region=region, max_steps=100_000)
        results = executor.run("main", [])
        trap_r, _, steps_r, rsteps_r, _ = ref_rows[0]
        assert (results[0].trap, results[0].steps, results[0].region_steps) \
            == (trap_r, steps_r, rsteps_r)
        _, value_c, steps_c, rsteps_c, memory_c = ref_rows[1]
        for lane in range(1, lanes):
            res = results[lane]
            assert res.trap is None and res.finished
            assert res.value == value_c
            assert (res.steps, res.region_steps) == (steps_c, rsteps_c)
            assert executor.lane_memory(lane).read_global("out", 8) == \
                memory_c.read_global("out", 8)

    def test_all_lanes_hang_against_the_step_budget(self):
        """A batch whose every lane spins must charge each lane exactly
        the hang budget — not multiply it by the lane count, and not run
        past it — mirroring the serial HANG_FACTOR cutoff per trial."""
        module = _load(SPIN)
        budget = 500
        trap, _, steps, _, _ = _ref_trial(module, None, _region(module),
                                          max_steps=budget)
        assert trap == "hang"

        lanes = SCALAR_CUTOFF + 4
        executor = BatchExecutor(module, Memory(), lanes,
                                 fault_region=_region(module),
                                 max_steps=budget)
        for res in executor.run("main", []):
            assert res.trap == "hang" and not res.finished
            assert res.steps == steps  # the interpreter's exact cutoff


class TestConstruction:
    def test_zero_lanes_rejected(self):
        module = _load(LOOP_SUM)
        with pytest.raises(ValueError, match="at least one lane"):
            BatchExecutor(module, Memory(), 0)

    def test_plan_count_must_match_lanes(self):
        module = _load(LOOP_SUM)
        with pytest.raises(ValueError, match="per lane"):
            BatchExecutor(module, Memory(), 4, fault_plans=[None] * 3)

    def test_unfinished_lane_memory_rejected(self):
        module = _load(LOOP_SUM)
        executor = BatchExecutor(module, Memory(), 2)
        with pytest.raises(ValueError, match="not finished"):
            executor.lane_memory(0)
