"""Edge-case semantics: corrupted-value behaviour the fault injector
relies on (huge shifts, overflow clamps, NaN propagation)."""
import math

import pytest

from repro.ir import parse_module
from repro.runtime import Interpreter


def run_expr(body: str, params: str = "", args=()):
    src = f"func @main({params}) -> f64 {{\nentry:\n{body}\n}}\n"
    return Interpreter(parse_module(src)).run("main", args).value


class TestIntegerEdges:
    def test_shift_amount_masked_to_63(self):
        v = run_expr("  %a = shl 1:i64, 200:i64\n  %f = sitofp %a\n  ret %f")
        assert v == float(1 << (200 & 63))

    def test_lshr_of_negative_is_logical(self):
        v = run_expr("  %a = lshr -1:i64, 60:i64\n  %f = sitofp %a\n  ret %f")
        assert v == float(((1 << 64) - 1) >> 60)

    def test_huge_multiply_is_clamped(self):
        """Corrupted integers cannot blow up into unbounded bignums."""
        big = (1 << 100) + 12345
        src = (
            f"func @main() -> f64 {{\n"
            f"entry:\n"
            f"  %a = mov {big}:i64\n"
            f"  %b = mul %a, %a\n"
            f"  %c = mul %b, %b\n"
            f"  %d = icmp ne %c, 0:i64\n"
            f"  %f = sitofp %d\n"
            f"  ret %f\n"
            f"}}\n"
        )
        result = Interpreter(parse_module(src)).run("main", [])
        assert result.value in (0.0, 1.0)  # defined, bounded behaviour

    def test_srem_matches_c_semantics(self):
        cases = [(7, 3, 1), (-7, 3, -1), (7, -3, 1), (-7, -3, -1)]
        for a, b, expected in cases:
            v = run_expr(
                f"  %r = srem {a}:i64, {b}:i64\n  %f = sitofp %r\n  ret %f"
            )
            assert v == float(expected), (a, b)

    def test_sdiv_matches_c_semantics(self):
        cases = [(7, 2, 3), (-7, 2, -3), (7, -2, -3), (-7, -2, 3)]
        for a, b, expected in cases:
            v = run_expr(
                f"  %r = sdiv {a}:i64, {b}:i64\n  %f = sitofp %r\n  ret %f"
            )
            assert v == float(expected), (a, b)


class TestFloatEdges:
    def test_select_with_nan_condition_falls_through(self):
        v = run_expr(
            "  %nan = fdiv 0.0:f64, 0.0:f64\n"
            "  %c = fcmp gt %nan, 0.0:f64\n"
            "  %s = select %c, 1.0:f64, 2.0:f64\n"
            "  ret %s"
        )
        assert v == 2.0

    def test_nan_propagates_through_arithmetic(self):
        v = run_expr(
            "  %nan = fdiv 0.0:f64, 0.0:f64\n"
            "  %a = fmul %nan, 3.0:f64\n"
            "  %b = fadd %a, 1.0:f64\n"
            "  ret %b"
        )
        assert math.isnan(v)

    def test_floor_of_infinity_passes_through(self):
        v = run_expr("  %inf = fdiv 1.0:f64, 0.0:f64\n  %a = floor %inf\n  ret %a")
        assert v == math.inf

    def test_trig_of_infinity_is_nan(self):
        v = run_expr("  %inf = fdiv 1.0:f64, 0.0:f64\n  %a = sin %inf\n  ret %a")
        assert math.isnan(v)

    def test_special_float_constants_roundtrip(self):
        from repro.ir import Const, F64, format_value
        from repro.ir.parser import parse_module as parse

        for value in (math.inf, -math.inf):
            text = format_value(Const(value, F64))
            src = f"func @main() -> f64 {{\nentry:\n  %a = mov {text}\n  ret %a\n}}\n"
            assert Interpreter(parse(src)).run("main", []).value == value

    def test_negative_zero_preserved(self):
        v = run_expr("  %a = fmul -0.0:f64, 1.0:f64\n  ret %a")
        assert v == 0.0 and math.copysign(1.0, v) == -1.0
