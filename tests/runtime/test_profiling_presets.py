import pytest

from repro.runtime import Interpreter, Profile, TimingModel
from repro.runtime.scheduler import CORE_PRESETS

from ..conftest import build_call_module, build_dot_module, seed_memory


class TestProfiler:
    def run_profiled(self, module, args):
        mem = seed_memory(module)
        profile = Profile()
        interp = Interpreter(module, memory=mem, profile=profile)
        result = interp.run("main", args)
        return profile, result

    def test_inclusive_matches_total_steps(self):
        profile, result = self.run_profiled(build_call_module(), [6])
        assert profile.inclusive["main"] == result.steps

    def test_exclusive_sums_to_total(self):
        profile, result = self.run_profiled(build_call_module(), [6])
        assert sum(profile.exclusive.values()) == result.steps

    def test_callee_attribution(self):
        profile, _ = self.run_profiled(build_call_module(), [6])
        assert profile.calls["g"] == 6
        assert profile.exclusive["g"] > 0
        assert profile.inclusive["main"] > profile.exclusive["main"]
        assert profile.share("g") + profile.share("main") == pytest.approx(1.0)

    def test_no_callees_means_exclusive_equals_inclusive(self):
        profile, _ = self.run_profiled(build_dot_module(), [4, 8])
        assert profile.exclusive["main"] == profile.inclusive["main"]

    def test_render(self):
        profile, _ = self.run_profiled(build_call_module(), [6])
        text = profile.render()
        assert "main" in text and "g" in text

    def test_profiling_off_by_default(self):
        interp = Interpreter(build_dot_module(), memory=seed_memory(build_dot_module()))
        assert interp.profile is None

    def test_top_breaks_ties_by_name(self):
        """Tied exclusive counts render in name order, not dict-insertion
        (first-call) order."""
        profile = Profile()
        for name in ("zeta", "alpha", "mid"):
            profile.record(name, 10, 10)
        assert [row[0] for row in profile.top()] == ["alpha", "mid", "zeta"]

    def test_render_widens_for_long_outlined_names(self):
        profile = Profile()
        long_name = "main.loop.body.clone.protected.outlined.body.dup"
        profile.record(long_name, 100, 100)
        profile.record("main", 50, 50)
        header, first, second = profile.render().splitlines()
        assert long_name in first
        # columns stay aligned: every row is the same rendered width
        assert len(header) == len(first) == len(second)

    def test_render_truncates_extreme_names_keeping_suffix(self):
        profile = Profile()
        huge = "x" * 100 + ".body.dup"
        profile.record(huge, 1, 1)
        row = profile.render().splitlines()[1]
        assert "….body.dup".replace("…", "") in row  # suffix survives
        assert row.split()[0].startswith("…")
        assert len(row.split()[0]) <= 64


class TestCorePresets:
    def test_presets_exist(self):
        assert set(CORE_PRESETS) == {"inorder-2", "ooo-4", "ooo-8"}

    def test_from_preset(self):
        tm = TimingModel.from_preset("inorder-2")
        assert tm.width == 2
        with pytest.raises(KeyError, match="unknown core preset"):
            TimingModel.from_preset("quantum-9000")

    def test_wider_core_is_faster_on_parallel_work(self):
        module = build_dot_module()

        def cycles(preset):
            tm = TimingModel.from_preset(preset)
            mem = seed_memory(module)
            Interpreter(module, memory=mem, timing=tm).run("main", [6, 8])
            return tm.cycles

        assert cycles("ooo-8") <= cycles("ooo-4") <= cycles("inorder-2")
