import math

import pytest

from repro.ir import (
    CmpPred,
    F64,
    Function,
    I64,
    IRBuilder,
    Module,
    Opcode,
    Reg,
    VOID,
    parse_module,
    verify_module,
)
from repro.runtime import (
    CoreDumpError,
    HangError,
    Interpreter,
    Memory,
    SegfaultError,
)

from ..conftest import build_dot_module, run_main, seed_memory


def expr_module(body: str, ret_ty: str = "f64", params: str = "") -> Module:
    return parse_module(
        f"func @main({params}) -> {ret_ty} {{\nentry:\n{body}\n}}\n"
    )


class TestSemantics:
    def test_dot_product_value(self, dot_module):
        result, mem = run_main(dot_module, [4, 8])
        xs = mem.read_global("x", 8)
        ys = mem.read_global("y", 8)
        dot = sum(a * b for a, b in zip(xs, ys))
        outs = mem.read_global("out", 4)
        for i, v in enumerate(outs):
            assert v == pytest.approx(dot * (i + 1))

    def test_signed_division_truncates_toward_zero(self):
        m = expr_module("  %a = sdiv -7:i64, 2:i64\n  %f = sitofp %a\n  ret %f")
        assert Interpreter(m).run("main", []).value == -3.0

    def test_signed_remainder_sign(self):
        m = expr_module("  %a = srem -7:i64, 2:i64\n  %f = sitofp %a\n  ret %f")
        assert Interpreter(m).run("main", []).value == -1.0

    def test_fdiv_by_zero_is_ieee(self):
        m = expr_module("  %a = fdiv 1.0:f64, 0.0:f64\n  ret %a")
        assert Interpreter(m).run("main", []).value == math.inf
        m = expr_module("  %a = fdiv 0.0:f64, 0.0:f64\n  ret %a")
        assert math.isnan(Interpreter(m).run("main", []).value)

    def test_sqrt_negative_is_nan(self):
        m = expr_module("  %a = sqrt -4.0:f64\n  ret %a")
        assert math.isnan(Interpreter(m).run("main", []).value)

    def test_log_nonpositive_is_nan(self):
        m = expr_module("  %a = log -1.0:f64\n  ret %a")
        assert math.isnan(Interpreter(m).run("main", []).value)

    def test_exp_overflow_is_inf(self):
        m = expr_module("  %a = exp 1000.0:f64\n  ret %a")
        assert Interpreter(m).run("main", []).value == math.inf

    def test_nan_branch_falls_through(self):
        src = (
            "func @main() -> f64 {\n"
            "entry:\n"
            "  %nan = fdiv 0.0:f64, 0.0:f64\n"
            "  %c = fcmp lt %nan, 1.0:f64\n"
            "  cbr %c, yes, no\n"
            "yes:\n"
            "  ret 1.0:f64\n"
            "no:\n"
            "  ret 2.0:f64\n"
            "}\n"
        )
        assert Interpreter(parse_module(src)).run("main", []).value == 2.0


class TestTraps:
    def test_integer_division_by_zero(self):
        m = expr_module("  %a = sdiv 1:i64, 0:i64\n  %f = sitofp %a\n  ret %f")
        with pytest.raises(CoreDumpError):
            Interpreter(m).run("main", [])

    def test_fptosi_of_nan_traps(self):
        m = expr_module(
            "  %nan = fdiv 0.0:f64, 0.0:f64\n  %a = fptosi %nan\n  %f = sitofp %a\n  ret %f"
        )
        with pytest.raises(CoreDumpError):
            Interpreter(m).run("main", [])

    def test_load_out_of_bounds(self):
        m = expr_module("  %a = load 0:i64 : f64\n  ret %a")
        with pytest.raises(SegfaultError):
            Interpreter(m).run("main", [])

    def test_call_unknown_function(self):
        m = expr_module("  %a = call @ghost() : f64\n  ret %a")
        with pytest.raises(CoreDumpError, match="unknown function"):
            Interpreter(m).run("main", [])

    def test_unknown_intrinsic(self):
        m = expr_module("  %a = intrin ghost() : i64\n  %f = sitofp %a\n  ret %f")
        with pytest.raises(CoreDumpError, match="unknown intrinsic"):
            Interpreter(m).run("main", [])

    def test_hang_detection(self):
        src = "func @main() -> f64 {\nentry:\n  br entry\n}\n"
        with pytest.raises(HangError):
            Interpreter(parse_module(src), max_steps=1000).run("main", [])

    def test_call_depth_limit(self):
        src = (
            "func @main() -> f64 {\nentry:\n  %a = call @main() : f64\n  ret %a\n}\n"
        )
        with pytest.raises(CoreDumpError, match="call depth"):
            Interpreter(parse_module(src)).run("main", [])

    def test_wrong_arity_run(self, dot_module):
        with pytest.raises(TypeError):
            Interpreter(dot_module).run("main", [1])


class TestAccounting:
    def test_step_and_opcode_counts(self):
        m = expr_module("  %a = fadd 1.0:f64, 2.0:f64\n  ret %a")
        result = Interpreter(m).run("main", [])
        assert result.steps == 2
        assert result.counts[Opcode.FADD] == 1
        assert result.counts[Opcode.RET] == 1

    def test_counts_scale_with_trip_count(self, dot_module):
        r1, _ = run_main(build_dot_module(), [2, 8])
        r2, _ = run_main(build_dot_module(), [4, 8])
        assert r2.steps > r1.steps

    def test_intrinsic_charge_counted(self):
        m = expr_module("  %a = intrin probe() : i64\n  %f = sitofp %a\n  ret %f")
        interp = Interpreter(m)
        interp.register_intrinsic(
            "probe", lambda interp, args: (7, [Opcode.FMUL, Opcode.FMUL, Opcode.LOAD])
        )
        result = interp.run("main", [])
        assert result.value == 7.0
        assert result.counts[Opcode.FMUL] == 2
        assert result.counts[Opcode.LOAD] == 1
        assert result.counts[Opcode.INTRIN] == 1
        assert result.steps == 3 + 3  # intrin+sitofp+ret plus 3 charged

    def test_region_counting(self, dot_module):
        from repro.runtime import Region

        inner = {l for l in dot_module.get_function("main").blocks if l.startswith("inner")}
        region = Region(blocks={("main", l) for l in inner})
        mem = seed_memory(dot_module)
        interp = Interpreter(dot_module, memory=mem, fault_region=region)
        interp.run("main", [4, 8])
        assert 0 < interp.region_steps < interp.steps


class TestCalls:
    def test_return_value_flows(self, call_module):
        result, mem = run_main(call_module, [4])
        outs = mem.read_global("out", 4)
        a = mem.read_global("a", 4)
        b = mem.read_global("b", 4)

        def g(x, y):
            return (
                math.sqrt(x * x + y * y)
                + math.exp(-x * y)
                + math.log(abs(x) + 1.0)
            ) * (math.cos(y) + 2.0)

        for i in range(4):
            assert outs[i] == pytest.approx(g(a[i], b[i]))

    def test_void_function_call(self):
        src = (
            "func @side() -> void {\n"
            "entry:\n"
            "  ret\n"
            "}\n"
            "func @main() -> f64 {\n"
            "entry:\n"
            "  call @side()\n"
            "  ret 1.0:f64\n"
            "}\n"
        )
        assert Interpreter(parse_module(src)).run("main", []).value == 1.0
