"""Instruction-skip and control-flow fault kinds, cross-engine.

The reference interpreter defines the semantics (a skipped instruction
is fetched and counted but its architectural effects are dropped; a
skipped terminator falls through in block-layout order; ``cf`` retargets
the next executed branch to a wrong-but-valid block).  The batch engine
must reproduce them byte-identically — trap kind, step counts, return
value and final global memory — even though it peels armed lanes out of
the lockstep slab onto its scalar path.
"""
import pytest

from repro.runtime import (
    BatchExecutor,
    CoreDumpError,
    FaultDetectedError,
    FaultPlan,
    HangError,
    Interpreter,
    SegfaultError,
    TrapError,
)

from repro.ir import F64, I64, Function, IRBuilder, Module, Reg, verify_module

from ..conftest import build_call_module, build_dot_module, seed_memory

MAX_STEPS = 200_000


def build_straightline_module() -> Module:
    """A single-block main: its RET has no layout successor to fall into."""
    m = Module("straight")
    m.add_global("out", 4)
    f = Function("main", [Reg("n", I64)], F64)
    m.add_function(f)
    b = IRBuilder(f)
    op = b.mov(b.global_addr("out"), hint="op")
    v = b.fadd(b.sitofp(f.params[0]), 1.5)
    b.store(v, op)
    b.ret(v)
    verify_module(m)
    return m


def _globals_snapshot(module, mem):
    return {name: mem.read_global(name, g.size)
            for name, g in module.globals.items()}


def _ref_run(build, args, plan):
    """(trap, detected, steps, region_steps, value, globals) on the
    reference interpreter."""
    module = build()
    mem = seed_memory(module)
    interp = Interpreter(module, memory=mem, fault_plan=plan,
                         max_steps=MAX_STEPS)
    trap, detected, value = None, False, None
    try:
        value = interp.run("main", args).value
    except FaultDetectedError:
        detected = True
    except SegfaultError:
        trap = "segfault"
    except HangError:
        trap = "hang"
    except (CoreDumpError, TrapError):
        trap = "coredump"
    finals = None if trap else _globals_snapshot(module, mem)
    return trap, detected, interp.steps, interp.region_steps, value, finals


def _batch_run(build, args, plans):
    """One observation tuple per plan, from a single lane slab."""
    module = build()
    executor = BatchExecutor(
        module, seed_memory(module), len(plans), fault_plans=list(plans),
        max_steps=MAX_STEPS,
    )
    rows = []
    for i, res in enumerate(executor.run("main", args)):
        finals = None
        if res.trap is None:
            finals = _globals_snapshot(module, executor.lane_memory(i))
        rows.append((res.trap, res.detected, res.steps, res.region_steps,
                     res.value, finals))
    return rows


def _count_steps(build, args):
    module = build()
    interp = Interpreter(module, memory=seed_memory(module),
                         max_steps=MAX_STEPS)
    interp.run("main", args)
    return interp.steps


class TestSkipSemantics:
    def test_skip_still_counts_the_step(self):
        """A skipped non-terminator drops its effects but not its slot in
        the dynamic stream: a completed run has the golden step count."""
        golden_steps = _count_steps(lambda: build_dot_module(4), [3, 4])
        trap, _, steps, _, _, finals = _ref_run(
            lambda: build_dot_module(4), [3, 4], FaultPlan(step=2, kind="skip"))
        if trap is None:
            assert steps == golden_steps
        assert trap is not None or finals is not None

    def test_skip_a_store_corrupts_exactly_that_output(self):
        """Skipping the final store of one outer iteration leaves that
        output cell at its seed value and every other cell golden."""
        build = lambda: build_dot_module(4)
        _, _, _, _, _, golden = _ref_run(build, [3, 4], None)
        module = build()
        seeded = _globals_snapshot(module, seed_memory(module))
        hit = 0
        for step in range(_count_steps(build, [3, 4])):
            trap, _, _, _, _, finals = _ref_run(
                build, [3, 4], FaultPlan(step=step, kind="skip"))
            if trap is not None or finals == golden:
                continue
            diff = [i for i in range(len(golden["out"]))
                    if finals["out"][i] != golden["out"][i]]
            if len(diff) == 1 and finals["out"][diff[0]] == seeded["out"][diff[0]]:
                hit += 1
        assert hit >= 3  # one skipped store per outer iteration

    def test_skipped_final_ret_falls_off_the_function(self):
        """A single-block main's RET has nowhere to fall through to;
        skipping it must coredump in both engines, not wedge."""
        build = build_straightline_module
        last = _count_steps(build, [2]) - 1
        plan = FaultPlan(step=last, kind="skip")
        trap, detected, _, _, _, _ = _ref_run(build, [2], plan)
        assert trap == "coredump"
        assert not detected
        _cross_check(build, [2], [plan])

    def test_burst_drops_consecutive_instructions(self):
        """A 3-burst at the same site diverges from the single skip —
        the extra dropped instructions are architecturally visible."""
        build = lambda: build_dot_module(4)
        single = _ref_run(build, [3, 4], FaultPlan(step=5, kind="skip"))
        burst = _ref_run(build, [3, 4],
                         FaultPlan(step=5, kind="skip-burst", burst_len=3))
        assert single != burst

    def test_cf_is_deterministic_in_pick(self):
        build = lambda: build_dot_module(4)
        a = _ref_run(build, [3, 4], FaultPlan(step=10, kind="cf", pick=0.3))
        b = _ref_run(build, [3, 4], FaultPlan(step=10, kind="cf", pick=0.3))
        assert a == b

    def test_cf_can_change_control_flow(self):
        build = lambda: build_dot_module(4)
        golden = _ref_run(build, [3, 4], None)
        diverged = 0
        for step in (5, 20, 40, 60):
            for pick in (0.0, 0.5, 0.99):
                out = _ref_run(build, [3, 4],
                               FaultPlan(step=step, kind="cf", pick=pick))
                if out[:1] != golden[:1] or out[5] != golden[5]:
                    diverged += 1
        assert diverged > 0


def _cross_check(build, args, plans):
    ref = [_ref_run(build, args, p) for p in plans]
    batch = _batch_run(build, args, plans)
    for i, (r, b) in enumerate(zip(ref, batch)):
        assert r == b, f"lane {i} plan {plans[i]}: ref={r[:5]} batch={b[:5]}"


class TestCrossEngine:
    def test_skip_sites_byte_identical(self):
        """Every 3rd single-skip site of the dot kernel, ref vs batch."""
        build = lambda: build_dot_module(4)
        total = _count_steps(build, [3, 4])
        plans = [FaultPlan(step=s, kind="skip") for s in range(0, total, 3)]
        _cross_check(build, [3, 4], plans)

    def test_bursts_and_cf_byte_identical(self):
        build = lambda: build_dot_module(4)
        total = _count_steps(build, [3, 4])
        plans = [FaultPlan(step=s, kind="skip-burst", burst_len=2)
                 for s in range(0, total, 7)]
        plans += [FaultPlan(step=s, kind="cf", pick=p)
                  for s in range(0, total, 11) for p in (0.0, 0.49, 0.99)]
        _cross_check(build, [3, 4], plans)

    def test_call_module_mixed_kinds_byte_identical(self):
        """Skips across a CALL boundary (dropped calls, skipped callee
        instructions, skipped RETs) plus classic kinds in the same slab."""
        build = build_call_module
        total = _count_steps(build, [4])
        plans = [FaultPlan(step=s, kind="skip") for s in range(0, total, 5)]
        plans += [FaultPlan(step=s, kind="skip-burst", burst_len=3)
                  for s in range(2, total, 13)]
        plans += [FaultPlan(step=7, kind="cf", pick=0.6),
                  FaultPlan(step=3, kind="value", bit=40, pick=0.2),
                  FaultPlan(step=9, kind="branch", pick=0.0)]
        _cross_check(build, [4], plans)
