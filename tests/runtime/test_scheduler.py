from repro.analysis import LATENCY
from repro.ir import Opcode, parse_module
from repro.runtime import Interpreter, TimingModel


class TestIssueModel:
    def test_width_limits_throughput(self):
        tm = TimingModel(width=2)
        for _ in range(100):
            tm.issue(0, 1)
        # 100 independent 1-cycle ops at width 2 need >= 50 cycles
        assert tm.cycles >= 50
        assert tm.ipc <= 2.0 + 1e-9

    def test_dependent_chain_is_serial(self):
        tm = TimingModel(width=8)
        t = 0
        for _ in range(10):
            t = tm.issue(t, 4)
        assert tm.cycles >= 40

    def test_independent_ops_overlap(self):
        tm = TimingModel(width=4)
        for _ in range(40):
            tm.issue(0, 4)
        # 40 ops at width 4 issue over 10 cycles, finishing by ~14
        assert tm.cycles <= 20

    def test_ipc_definition(self):
        tm = TimingModel(width=4)
        for _ in range(16):
            tm.issue(0, 1)
        assert tm.ipc == tm.instructions / tm.cycles

    def test_invalid_width(self):
        import pytest

        with pytest.raises(ValueError):
            TimingModel(width=0)

    def test_op_uses_latency_table(self):
        tm = TimingModel(width=4)
        finish = tm.op(Opcode.FDIV, 0)
        assert finish >= LATENCY[Opcode.FDIV]


class TestMemoryDependences:
    def test_load_after_store_waits(self):
        tm = TimingModel(width=4)
        store_done = tm.store(100, 0)
        load_done = tm.load(100, 0)
        assert load_done >= store_done

    def test_unrelated_addresses_independent(self):
        tm = TimingModel(width=4)
        tm.store(100, 0)
        early = tm.load(101, 0)
        assert early <= LATENCY[Opcode.LOAD] + 2


class TestBranchPredictor:
    def test_stable_branch_learns(self):
        tm = TimingModel(width=4, mispredict_penalty=20)
        for _ in range(50):
            tm.branch(("f", "b", 0), True, 0)
        baseline = tm.fetch_time
        tm.branch(("f", "b", 0), True, 0)
        # a predicted branch does not move the fetch floor
        assert tm.fetch_time <= baseline + 1

    def test_mispredict_flushes_fetch(self):
        tm = TimingModel(width=4, mispredict_penalty=20)
        for _ in range(10):
            tm.branch(("f", "b", 0), True, 0)
        before = tm.fetch_time
        tm.branch(("f", "b", 0), False, 0)  # surprise
        assert tm.fetch_time >= before + 10

    def test_alternating_branch_hurts(self):
        stable = TimingModel(width=4)
        flaky = TimingModel(width=4)
        for k in range(200):
            stable.branch(("s",), True, 0)
            flaky.branch(("s",), k % 2 == 0, 0)
        assert flaky.cycles > stable.cycles


class TestCharging:
    def test_charge_is_width_paced_not_serial(self):
        tm = TimingModel(width=4)
        end = tm.charge([Opcode.FMUL] * 40, 0)
        # serial would be ~160 cycles; parallel at width 4 is ~14
        assert end <= 40

    def test_charge_counts_instructions(self):
        tm = TimingModel(width=4)
        tm.charge([Opcode.ADD, Opcode.ADD], 0)
        assert tm.instructions == 2


class TestEndToEndTiming:
    def test_duplicated_streams_raise_ipc(self):
        """The SWIFT-R effect: independent copies fill issue slots."""
        base_src = (
            "func @main(%p: ptr) -> f64 {\n"
            "entry:\n"
            "  %a = load %p : f64\n"
            "  %b = fmul %a, %a\n"
            "  %c = fmul %b, %b\n"
            "  %d = fmul %c, %c\n"
            "  %e = fmul %d, %d\n"
            "  ret %e\n"
            "}\n"
        )
        dup_src = base_src.replace(
            "  ret %e\n",
            "  %b2 = fmul %a, %a\n"
            "  %c2 = fmul %b2, %b2\n"
            "  %d2 = fmul %c2, %c2\n"
            "  %e2 = fmul %d2, %d2\n"
            "  %b3 = fmul %a, %a\n"
            "  %c3 = fmul %b3, %b3\n"
            "  %d3 = fmul %c3, %c3\n"
            "  %e3 = fmul %d3, %d3\n"
            "  ret %e\n",
        )

        def ipc_of(src):
            module = parse_module(src)
            tm = TimingModel(width=4)
            interp = Interpreter(module, timing=tm)
            interp.memory.cells[32] = 1.5
            interp.run("main", [32])
            return tm.ipc

        assert ipc_of(dup_src) > ipc_of(base_src) * 1.5
