import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.eval.charts import bar, bar_chart, grouped_bar_chart, stacked_chart
from repro.runtime import Interpreter, ReferenceInterpreter, Trace, trace_run

from ..conftest import build_call_module, build_dot_module, seed_memory


class TestReferenceInterpreter:
    @pytest.mark.parametrize("builder,args", [
        (build_dot_module, [5, 8]),
        (build_call_module, [5]),
    ])
    def test_agrees_with_fast_interpreter(self, builder, args):
        module = builder()
        mem_fast = seed_memory(module)
        fast = Interpreter(module, memory=mem_fast)
        result = fast.run("main", args)

        mem_ref = seed_memory(module)
        ref = ReferenceInterpreter(module, memory=mem_ref)
        value = ref.run("main", args)

        assert ref.steps == result.steps
        assert value == result.value
        assert mem_ref.read_global("out", 5) == mem_fast.read_global("out", 5)

    def test_random_programs_agree(self):
        from ..ir.test_property_roundtrip import build_random_program

        ops = [("fadd", 0, 1), ("fmul", 1, 0), ("add", 0, 1), ("exp", 0, 0)]
        module = build_random_program(ops)
        fast = Interpreter(module).run("main", [1.5]).value
        ref = ReferenceInterpreter(module).run("main", [1.5])
        assert fast == ref

    def test_intrinsics_supported(self):
        from repro.core import RSkipConfig, apply_rskip
        from repro.runtime import outputs_equal

        module = build_dot_module()
        golden_mem = seed_memory(module)
        Interpreter(module, memory=golden_mem).run("main", [5, 8])

        protected = build_dot_module()
        app = apply_rskip(protected, RSkipConfig())
        mem = seed_memory(protected)
        ref = ReferenceInterpreter(protected, memory=mem)
        ref.register_intrinsics(app.intrinsics())
        ref.run("main", [5, 8])
        assert outputs_equal(
            golden_mem.read_global("out", 5), mem.read_global("out", 5)
        )


class TestTrace:
    def test_trace_records_instructions(self):
        module = build_dot_module()
        trace, value = trace_run(module, "main", [3, 4], memory=seed_memory(module))
        assert trace.events
        assert trace.events[0].function == "main"
        assert "mov" in trace.events[0].text

    def test_trace_limit(self):
        module = build_dot_module()
        trace, _ = trace_run(module, "main", [6, 8],
                             memory=seed_memory(module), limit=20)
        assert len(trace.events) == 20
        assert trace.truncated
        assert "truncated" in trace.render()

    def test_function_filter(self):
        module = build_call_module()
        trace, _ = trace_run(module, "main", [4],
                             memory=seed_memory(module), functions=["g"])
        assert trace.events
        assert all(e.function == "g" for e in trace.events)

    def test_first_divergence(self):
        module = build_dot_module()
        t1, _ = trace_run(module, "main", [3, 4], memory=seed_memory(module))
        t2, _ = trace_run(module, "main", [3, 4], memory=seed_memory(module))
        assert t1.first_divergence(t2) is None

        mem = seed_memory(module)
        mem.write_global("x", [99.0])
        t3, _ = trace_run(module, "main", [3, 4], memory=mem)
        assert t1.first_divergence(t3) is not None

    def test_render_last(self):
        module = build_dot_module()
        trace, _ = trace_run(module, "main", [2, 3], memory=seed_memory(module))
        assert len(trace.render(last=3).splitlines()) == 3


class TestCharts:
    def test_bar_scales(self):
        assert bar(10, 10, width=10) == "█" * 10
        assert bar(5, 10, width=10).startswith("█" * 5)
        assert bar(0, 10, width=10) == ""
        assert bar(20, 10, width=10) == "█" * 10  # clamped

    def test_bar_zero_max(self):
        assert bar(1, 0) == ""

    @settings(max_examples=50, deadline=None)
    @given(st.floats(min_value=0, max_value=100), st.floats(min_value=1, max_value=100))
    def test_bar_length_bounded(self, value, maximum):
        assert len(bar(value, maximum, width=30)) <= 30

    def test_bar_chart_layout(self):
        text = bar_chart([("alpha", 1.0), ("b", 2.0)], width=8)
        lines = text.splitlines()
        assert len(lines) == 2
        assert lines[0].startswith("alpha")
        assert "2.00" in lines[1]

    def test_grouped_chart(self):
        text = grouped_bar_chart(
            [("sgemm", {"SWIFT-R": 2.5, "AR100": 1.5})],
            series=["SWIFT-R", "AR100"],
        )
        assert "sgemm:" in text
        assert "SWIFT-R" in text and "AR100" in text

    def test_stacked_chart_shares(self):
        text = stacked_chart(
            [("UNSAFE", {"Correct": 0.8, "SDC": 0.2})],
            categories=["Correct", "SDC"],
            width=10,
        )
        assert "UNSAFE" in text
        assert "Correct=80%" in text
        assert "[" in text  # legend
