import pytest

from repro.ir import Opcode
from repro.runtime import (
    ENERGY,
    EnergyEstimate,
    Interpreter,
    estimate_energy,
)

from ..conftest import build_dot_module, seed_memory


class TestEnergyTable:
    def test_covers_every_opcode(self):
        for op in Opcode:
            assert op in ENERGY

    def test_memory_dominates_arithmetic(self):
        assert ENERGY[Opcode.LOAD] > ENERGY[Opcode.FMUL] > ENERGY[Opcode.ADD]

    def test_transcendentals_expensive(self):
        assert ENERGY[Opcode.EXP] > ENERGY[Opcode.FDIV]


class TestEstimate:
    def test_counts_weighted(self):
        est = estimate_energy({Opcode.ADD: 10, Opcode.LOAD: 1})
        assert est.dynamic == pytest.approx(10 * ENERGY[Opcode.ADD] + ENERGY[Opcode.LOAD])
        assert est.static == 0.0

    def test_leakage_scales_with_cycles(self):
        a = estimate_energy({Opcode.ADD: 1}, cycles=100)
        b = estimate_energy({Opcode.ADD: 1}, cycles=200)
        assert b.static == 2 * a.static
        assert b.total > a.total

    def test_normalized(self):
        base = EnergyEstimate(dynamic=100.0, static=0.0)
        twice = EnergyEstimate(dynamic=200.0, static=0.0)
        assert twice.normalized(base) == 2.0
        assert base.normalized(EnergyEstimate(0.0, 0.0)) == 0.0

    def test_custom_table(self):
        est = estimate_energy({Opcode.ADD: 5}, energy_table={Opcode.ADD: 2.0})
        assert est.dynamic == 10.0

    def test_end_to_end_protection_costs_energy(self):
        from repro.transforms import apply_swift_r

        module = build_dot_module()
        mem = seed_memory(module)
        base = Interpreter(module, memory=mem).run("main", [6, 8])

        protected = build_dot_module()
        apply_swift_r(protected)
        mem2 = seed_memory(protected)
        prot = Interpreter(protected, memory=mem2).run("main", [6, 8])

        e_base = estimate_energy(base.counts)
        e_prot = estimate_energy(prot.counts)
        assert 1.5 < e_prot.normalized(e_base) < 3.6
