"""Golden per-opcode tests for the closure-compiled backend.

Every case runs under both the reference :class:`Interpreter` and the
:class:`CompiledExecutor` and asserts the full observable state matches:
return value (NaN-aware), step count, per-opcode counts, region steps
and final memory — or, on trap paths, the exact exception type and
message.  Plus compile-cache identity and the backend dispatch rules.
"""
import math

import pytest

from repro.ir import Opcode, parse_module
from repro.ir.printer import format_module
from repro.runtime import (
    BACKENDS,
    CompiledExecutor,
    CoreDumpError,
    HangError,
    Interpreter,
    Memory,
    SegfaultError,
    clear_compile_cache,
    compile_module,
    make_executor,
    module_fingerprint,
    set_default_backend,
)
from repro.runtime.faults import FaultPlan

from ..conftest import (
    build_call_module,
    build_dot_module,
    build_rmw_module,
    seed_memory,
)

pytestmark = pytest.mark.backend


def module_of(body: str, ret_ty: str = "f64", params: str = ""):
    return parse_module(
        f"func @main({params}) -> {ret_ty} {{\nentry:\n{body}\n}}\n"
    )


def observe(cls, module, args=(), max_steps=1_000_000, intrinsics=None,
            seed=False):
    """One run reduced to a comparable tuple plus the memory it used."""
    mem = seed_memory(module) if seed else Memory()
    engine = cls(module, memory=mem, max_steps=max_steps)
    if intrinsics:
        engine.register_intrinsics(intrinsics)
    try:
        result = engine.run("main", list(args))
    except Exception as exc:  # noqa: BLE001 - traps are part of the contract
        return ("raised", type(exc).__name__, str(exc), exc.args), mem
    return (
        "ok", result.value, result.steps, dict(result.counts),
        result.region_steps,
    ), mem


def assert_backends_agree(module, args=(), max_steps=1_000_000,
                          intrinsics_factory=None, seed=False):
    ref, ref_mem = observe(
        Interpreter, module, args, max_steps,
        intrinsics_factory() if intrinsics_factory else None, seed)
    comp, comp_mem = observe(
        CompiledExecutor, module, args, max_steps,
        intrinsics_factory() if intrinsics_factory else None, seed)
    if ref[0] == "ok" and isinstance(ref[1], float) and math.isnan(ref[1]):
        assert comp[0] == "ok" and math.isnan(comp[1])
        assert ref[2:] == comp[2:]
    else:
        assert ref == comp
    assert ref_mem.size == comp_mem.size
    for i, (a, b) in enumerate(zip(ref_mem.cells, comp_mem.cells)):
        same = a == b or (
            isinstance(a, float) and isinstance(b, float)
            and math.isnan(a) and math.isnan(b)
        )
        assert same, f"memory cell {i}: {a!r} != {b!r}"
    return ref


#: (id, body, expected return value) — one golden case per opcode family.
GOLDEN = [
    ("mov", "  %a = mov 7:i64\n  %f = sitofp %a\n  ret %f", 7.0),
    ("add", "  %a = add 40:i64, 2:i64\n  %f = sitofp %a\n  ret %f", 42.0),
    ("sub", "  %a = sub 40:i64, 2:i64\n  %f = sitofp %a\n  ret %f", 38.0),
    ("mul_wrap",
     "  %a = mul 123456789123:i64, 987654321987:i64\n"
     "  %b = mul %a, %a\n  %c = mul %b, %b\n  %d = srem %c, 1000:i64\n"
     "  %f = sitofp %d\n  ret %f", 449.0),
    ("sdiv", "  %a = sdiv -7:i64, 2:i64\n  %f = sitofp %a\n  ret %f", -3.0),
    ("srem", "  %a = srem -7:i64, 2:i64\n  %f = sitofp %a\n  ret %f", -1.0),
    ("fadd", "  %a = fadd 1.5:f64, 2.25:f64\n  ret %a", 3.75),
    ("fsub", "  %a = fsub 1.5:f64, 2.25:f64\n  ret %a", -0.75),
    ("fmul", "  %a = fmul 1.5:f64, 2.0:f64\n  ret %a", 3.0),
    ("fdiv", "  %a = fdiv 3.0:f64, 2.0:f64\n  ret %a", 1.5),
    ("fdiv_pole", "  %a = fdiv -1.0:f64, 0.0:f64\n  ret %a", -math.inf),
    ("fdiv_nan", "  %a = fdiv 0.0:f64, 0.0:f64\n  ret %a", math.nan),
    ("fneg", "  %a = fneg 1.5:f64\n  ret %a", -1.5),
    ("fabs", "  %a = fabs -1.5:f64\n  ret %a", 1.5),
    ("sqrt", "  %a = sqrt 2.25:f64\n  ret %a", 1.5),
    ("sqrt_neg", "  %a = sqrt -4.0:f64\n  ret %a", math.nan),
    ("exp", "  %a = exp 1.0:f64\n  ret %a", math.e),
    ("exp_sat", "  %a = exp 1000.0:f64\n  ret %a", math.inf),
    ("log", "  %a = log 1.0:f64\n  ret %a", 0.0),
    ("log_sat", "  %a = log -1.0:f64\n  ret %a", math.nan),
    ("sin", "  %a = sin 0.5:f64\n  ret %a", math.sin(0.5)),
    ("sin_inf", "  %x = fdiv 1.0:f64, 0.0:f64\n  %a = sin %x\n  ret %a",
     math.nan),
    ("cos", "  %a = cos 0.5:f64\n  ret %a", math.cos(0.5)),
    ("floor", "  %a = floor 2.75:f64\n  ret %a", 2.0),
    ("floor_inf", "  %x = fdiv 1.0:f64, 0.0:f64\n  %a = floor %x\n  ret %a",
     math.inf),
    ("sitofp", "  %a = sitofp 3:i64\n  ret %a", 3.0),
    ("fptosi", "  %a = fptosi 3.9:f64\n  %f = sitofp %a\n  ret %f", 3.0),
    ("icmp", "  %a = icmp le 2:i64, 2:i64\n  %f = sitofp %a\n  ret %f", 1.0),
    ("fcmp_nan",
     "  %n = fdiv 0.0:f64, 0.0:f64\n  %a = fcmp lt %n, 1.0:f64\n"
     "  %f = sitofp %a\n  ret %f", 0.0),
    ("select",
     "  %a = select 1:i64, 10.0:f64, 20.0:f64\n  ret %a", 10.0),
    ("select_nan",
     "  %n = fdiv 0.0:f64, 0.0:f64\n"
     "  %a = select %n, 10.0:f64, 20.0:f64\n  ret %a", 20.0),
    ("and", "  %a = and 12:i64, 10:i64\n  %f = sitofp %a\n  ret %f", 8.0),
    ("or", "  %a = or 12:i64, 10:i64\n  %f = sitofp %a\n  ret %f", 14.0),
    ("xor", "  %a = xor 12:i64, 10:i64\n  %f = sitofp %a\n  ret %f", 6.0),
    ("shl", "  %a = shl 3:i64, 4:i64\n  %f = sitofp %a\n  ret %f", 48.0),
    ("shl_wrap",
     "  %a = shl 12345678901:i64, 60:i64\n  %b = shl %a, 60:i64\n"
     "  %c = shl %b, 60:i64\n  %d = srem %c, 1000:i64\n"
     "  %f = sitofp %d\n  ret %f", None),
    ("lshr", "  %a = lshr -1:i64, 60:i64\n  %f = sitofp %a\n  ret %f", 15.0),
    ("alloc_store_load",
     "  %p = alloc 4:i64\n  %q = add %p, 2:i64\n"
     "  store 2.5:f64, %q\n  %v = load %q\n  ret %v", 2.5),
    ("br_cbr",
     "  %i = mov 0:i64\n  br head\nhead:\n"
     "  %i = add %i, 1:i64\n  %c = icmp lt %i, 5:i64\n"
     "  cbr %c, head, done\ndone:\n  %f = sitofp %i\n  ret %f", 5.0),
]


@pytest.mark.parametrize("body,expected",
                         [(c[1], c[2]) for c in GOLDEN],
                         ids=[c[0] for c in GOLDEN])
def test_golden_opcode(body, expected):
    obs = assert_backends_agree(module_of(body))
    assert obs[0] == "ok"
    if expected is not None:
        if isinstance(expected, float) and math.isnan(expected):
            assert math.isnan(obs[1])
        else:
            assert obs[1] == pytest.approx(expected)


TRAPS = [
    ("div_zero", "  %a = sdiv 1:i64, 0:i64\n  %f = sitofp %a\n  ret %f",
     CoreDumpError, "integer division by zero"),
    ("rem_zero", "  %a = srem 1:i64, 0:i64\n  %f = sitofp %a\n  ret %f",
     CoreDumpError, "integer remainder by zero"),
    ("fptosi_inf",
     "  %x = fdiv 1.0:f64, 0.0:f64\n  %a = fptosi %x\n"
     "  %f = sitofp %a\n  ret %f",
     CoreDumpError, "float-to-int conversion trap"),
    ("fptosi_nan",
     "  %x = fdiv 0.0:f64, 0.0:f64\n  %a = fptosi %x\n"
     "  %f = sitofp %a\n  ret %f",
     CoreDumpError, "float-to-int conversion trap"),
    ("load_oob", "  %v = load 3:i64\n  ret %v",
     SegfaultError, "segmentation fault at address 3"),
    ("store_oob", "  store 1.0:f64, 2:i64\n  ret 0.0:f64",
     SegfaultError, "segmentation fault at address 2"),
]


@pytest.mark.parametrize("body,exc_type,message",
                         [(c[1], c[2], c[3]) for c in TRAPS],
                         ids=[c[0] for c in TRAPS])
def test_trap_parity(body, exc_type, message):
    obs = assert_backends_agree(module_of(body))
    assert obs[0] == "raised"
    assert obs[1] == exc_type.__name__
    assert obs[2] == message


def test_hang_parity_exact_step():
    src = "func @main() -> f64 {\nentry:\n  br entry\n}\n"
    for budget in (1, 2, 100):
        obs = assert_backends_agree(parse_module(src), max_steps=budget)
        assert obs[1] == "HangError"
        assert obs[2] == (f"program exceeded step budget "
                          f"({budget + 1} dynamic instructions)")


def test_hang_parity_mid_block():
    # the hang lands inside a fused straight-line segment: the compiled
    # backend must replay and surface the same exact step count
    src = (
        "func @main() -> f64 {\nentry:\n  %i = mov 0:i64\n  br loop\n"
        "loop:\n  %i = add %i, 1:i64\n  %j = add %i, 2:i64\n"
        "  %k = add %j, 3:i64\n  br loop\n}\n"
    )
    for budget in range(100, 110):
        obs = assert_backends_agree(parse_module(src), max_steps=budget)
        assert obs[1] == "HangError"
        assert obs[2] == (f"program exceeded step budget "
                          f"({budget + 1} dynamic instructions)")


def test_trap_before_hang_in_same_segment():
    # div-by-zero one step before the budget runs out must still trap,
    # not hang, on both backends
    src = (
        "func @main() -> f64 {\nentry:\n  %i = mov 0:i64\n  br loop\n"
        "loop:\n  %i = add %i, 1:i64\n  %z = sub %i, %i\n"
        "  %q = sdiv %i, %z\n  br loop\n}\n"
    )
    # steps: mov=1 br=2 add=3 sub=4 sdiv=5; a budget of 5 lets the sdiv
    # execute (and trap) while a budget of 4 hangs one step earlier
    obs = assert_backends_agree(parse_module(src), max_steps=5)
    assert obs[1] == "CoreDumpError"
    assert obs[2] == "integer division by zero"
    obs = assert_backends_agree(parse_module(src), max_steps=4)
    assert obs[1] == "HangError"


def test_call_depth_parity():
    src = (
        "func @main() -> f64 {\nentry:\n  %r = call @f() : f64\n  ret %r\n}\n"
        "func @f() -> f64 {\nentry:\n  %r = call @f() : f64\n  ret %r\n}\n"
    )
    obs = assert_backends_agree(parse_module(src))
    assert obs[1] == "CoreDumpError"
    assert obs[2] == "call depth exceeded in @f"


def test_unknown_callee_parity():
    src = "func @main() -> f64 {\nentry:\n  %r = call @g() : f64\n  ret %r\n}\n"
    obs = assert_backends_agree(parse_module(src))
    assert obs[2] == "call to unknown function @g"


def test_unknown_intrinsic_parity():
    src = "func @main() -> f64 {\nentry:\n  %r = intrin miss() : f64\n  ret %r\n}\n"
    obs = assert_backends_agree(parse_module(src))
    assert obs[2] == "unknown intrinsic 'miss'"


def test_intrinsic_charge_accounting():
    def probe(engine, args):
        # 3 charged predictor steps on top of the intrin itself
        return args[0] * 2.0, (Opcode.MUL, Opcode.ADD, Opcode.MOV)

    src = (
        "func @main() -> f64 {\nentry:\n  %r = intrin probe(2.5:f64) : f64\n"
        "  ret %r\n}\n"
    )
    obs = assert_backends_agree(
        parse_module(src), intrinsics_factory=lambda: {"probe": probe})
    assert obs[:3] == ("ok", 5.0, 5)
    assert obs[3][Opcode.MUL] == 1 and obs[3][Opcode.INTRIN] == 1


def test_arity_error_parity():
    src = "func @main(%x: i64) -> f64 {\nentry:\n  ret 0.0:f64\n}\n"
    obs = assert_backends_agree(parse_module(src), args=())
    assert obs[1] == "TypeError"
    assert obs[2] == "@main expects 1 arguments, got 0"


@pytest.mark.parametrize(
    "build,args",
    [(build_dot_module, [4, 8]), (build_call_module, [8]),
     (build_rmw_module, [4, 8])],
    ids=["dot", "call", "rmw"])
def test_workload_modules_agree(build, args):
    obs = assert_backends_agree(build(), args=args, seed=True)
    assert obs[0] == "ok"


# -- compile cache ------------------------------------------------------------
class TestCompileCache:
    def test_same_module_hits_cache(self):
        clear_compile_cache()
        m = module_of("  ret 1.0:f64")
        assert compile_module(m) is compile_module(m)

    def test_identical_text_shares_fingerprint(self):
        m1 = module_of("  ret 1.0:f64")
        m2 = parse_module(format_module(m1))
        assert module_fingerprint(m1) == module_fingerprint(m2)
        clear_compile_cache()
        assert compile_module(m1) is compile_module(m2)

    def test_transform_recompiles(self):
        clear_compile_cache()
        m = module_of("  %a = fadd 1.0:f64, 2.0:f64\n  ret %a")
        before = compile_module(m)
        m.functions["main"].blocks["entry"].instrs.pop(0)
        m.functions["main"].blocks["entry"].instrs.insert(
            0, parse_module(
                "func @t() -> f64 {\nentry:\n  %a = fadd 2.0:f64, 2.0:f64\n"
                "  ret %a\n}\n"
            ).functions["t"].blocks["entry"].instrs[0])
        after = compile_module(m)
        assert before is not after
        assert CompiledExecutor(m).run("main", []).value == 4.0


# -- backend dispatch ---------------------------------------------------------
class TestDispatch:
    def test_backends_tuple(self):
        assert BACKENDS == ("ref", "compiled", "batch")

    def test_batch_default_keeps_single_run_dispatch(self):
        """The batch backend applies at the campaign-chunk level; a
        single make_executor call behaves like compiled/ref dispatch."""
        m = module_of("  ret 1.0:f64")
        assert isinstance(
            make_executor(m, backend="batch"), CompiledExecutor)
        plan = FaultPlan(step=0, kind="value", bit=1, pick=0.5)
        assert isinstance(
            make_executor(m, backend="batch", fault_plan=plan), Interpreter)

    def test_clean_run_defaults_to_compiled(self):
        m = module_of("  ret 1.0:f64")
        assert isinstance(make_executor(m), CompiledExecutor)

    def test_ref_backend_forces_interpreter(self):
        m = module_of("  ret 1.0:f64")
        assert isinstance(make_executor(m, backend="ref"), Interpreter)

    def test_instrumented_run_always_ref(self):
        m = module_of("  ret 1.0:f64")
        plan = FaultPlan(step=0, kind="value", bit=1, pick=0.5)
        assert isinstance(make_executor(m, fault_plan=plan), Interpreter)

    def test_env_default(self, monkeypatch):
        m = module_of("  ret 1.0:f64")
        monkeypatch.setenv("REPRO_BACKEND", "ref")
        assert isinstance(make_executor(m), Interpreter)

    def test_set_default_backend(self):
        m = module_of("  ret 1.0:f64")
        set_default_backend("ref")
        try:
            assert isinstance(make_executor(m), Interpreter)
        finally:
            set_default_backend(None)
        assert isinstance(make_executor(m), CompiledExecutor)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            set_default_backend("jit")
        with pytest.raises(ValueError):
            make_executor(module_of("  ret 1.0:f64"), backend="jit")
