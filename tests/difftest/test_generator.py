"""Generator invariants: determinism, verification, boundedness."""
import math

import pytest

from repro.difftest import SHAPES, generate, generate_module
from repro.difftest.oracles import execute_module
from repro.ir.printer import format_module
from repro.ir.verifier import verify_module

pytestmark = pytest.mark.difftest

RANGE = 25


def test_generation_is_deterministic():
    for index in range(RANGE):
        first = format_module(generate(7, index).module)
        second = format_module(generate(7, index).module)
        assert first == second


def test_different_indices_differ():
    texts = {format_module(generate(0, i).module) for i in range(RANGE)}
    assert len(texts) == RANGE


def test_generated_modules_verify():
    for index in range(RANGE):
        verify_module(generate(0, index).module)  # raises on failure


def test_all_shapes_appear():
    shapes = {generate(0, i).shape for i in range(RANGE)}
    assert shapes == set(SHAPES)


def test_unknown_shape_rejected():
    import random

    with pytest.raises(ValueError, match="unknown shape"):
        generate_module(random.Random(0), "spaghetti")


def test_outputs_are_finite():
    """The boundedness invariant: no inf/NaN in any observable output."""
    for index in range(RANGE):
        program = generate(0, index)
        result = execute_module(program.module)
        assert math.isfinite(result.value), (index, result.value)
        for name, cells in result.globals.items():
            assert all(math.isfinite(c) for c in cells), (index, name)


def test_programs_are_self_contained():
    """main takes no arguments and inputs live in global initializers, so
    the printed text alone replays the program."""
    for index in range(10):
        program = generate(0, index)
        main = program.module.functions["main"]
        assert main.params == []
        inits = [g for g in program.module.globals.values()
                 if g.name != "out" and g.init is not None]
        assert inits, f"index {index} has no initialized input globals"
