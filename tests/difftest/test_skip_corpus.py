"""Replay of the checked-in skip-escape corpus (``difftest/corpus/skip``).

Each entry is a shrunk program whose provenance header names the scheme
it escapes; replay asserts the escape still reproduces (the skip-site
map still shows silent corruption under that scheme) and that O6 itself
holds — the escape is a property of the protection scheme, never a
reference/batch divergence.
"""
import os

import pytest

from repro.difftest.oracles import check_skip_exhaustive, skip_site_map
from repro.ir.parser import parse_module

pytestmark = [pytest.mark.difftest]

SKIP_CORPUS_DIR = os.path.join(
    os.path.dirname(__file__), os.pardir, os.pardir,
    "difftest", "corpus", "skip",
)


def corpus_entries():
    if not os.path.isdir(SKIP_CORPUS_DIR):
        return []
    return sorted(f for f in os.listdir(SKIP_CORPUS_DIR) if f.endswith(".ir"))


def _load(filename):
    with open(os.path.join(SKIP_CORPUS_DIR, filename), encoding="utf-8") as fh:
        text = fh.read()
    scheme = None
    for line in text.splitlines():
        if line.startswith("; scheme:"):
            scheme = line.split(":", 1)[1].strip()
            break
    assert scheme, f"{filename}: corpus entry lacks a '; scheme:' header"
    return parse_module(text), scheme


def test_corpus_is_not_empty():
    """The escape corpus ships with the repo; an empty directory means a
    checkout/packaging problem, not a clean bill of health."""
    assert len(corpus_entries()) >= 3


@pytest.mark.parametrize("filename", corpus_entries())
def test_escape_still_reproduces(filename):
    module, scheme = _load(filename)
    tally = skip_site_map(module, scheme).tally()
    assert tally.get("sdc", 0) > 0, (
        f"{filename}: the recorded skip escape no longer reproduces "
        f"under {scheme} — either the scheme closed it (update the "
        f"corpus) or the fault model drifted")


@pytest.mark.parametrize("filename", corpus_entries())
def test_o6_holds_on_corpus(filename):
    module, scheme = _load(filename)
    assert check_skip_exhaustive(module, scheme) == []
