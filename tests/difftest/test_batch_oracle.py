"""O5: batch-lane equivalence against the reference interpreter.

Every lane of a batched run must reproduce its trial's exact
observables — outcome class, trap kind, detection flag, step counts,
return value and final memory — as if it had run alone on the
reference interpreter.  Replayed over the checked-in corpus (plain and
under every protection transform) and over freshly generated programs
through the difftest runner.
"""
import os

import pytest

from repro.difftest.generator import generate
from repro.difftest.oracles import PROTECTIONS, check_batch_equivalence
from repro.difftest.runner import ORACLES, check_index
from repro.ir.parser import parse_module

pytestmark = [pytest.mark.difftest, pytest.mark.backend]

CORPUS_DIR = os.path.join(
    os.path.dirname(__file__), os.pardir, os.pardir, "difftest", "corpus"
)


def corpus_modules():
    if not os.path.isdir(CORPUS_DIR):
        return []
    return sorted(f for f in os.listdir(CORPUS_DIR) if f.endswith(".ir"))


def _parse(filename):
    with open(os.path.join(CORPUS_DIR, filename), encoding="utf-8") as handle:
        return parse_module(handle.read())


@pytest.mark.parametrize("filename", corpus_modules())
def test_corpus_lanes_match_reference(filename):
    assert check_batch_equivalence(_parse(filename), seed=7) == []


@pytest.mark.parametrize("protection", sorted(PROTECTIONS))
def test_corpus_protected_lanes_match_reference(protection):
    """Protected programs exercise intrinsic calls (and RSkip's per-lane
    runtime state) inside the batch — lane isolation must hold there too."""
    module = _parse(corpus_modules()[0])
    assert check_batch_equivalence(module, protection=protection,
                                   seed=11) == []


@pytest.mark.parametrize("index", range(6))
def test_generated_programs_via_runner(index):
    """The runner's o5 mode on the live generator stream: protection
    assignment, per-index seeding and violation plumbing included."""
    record = check_index(31, index, oracle="o5")
    assert record.violations == []


def test_o5_is_registered():
    assert "o5" in ORACLES


def test_o5_detects_a_seeded_lane_divergence(monkeypatch):
    """Sensitivity: if the batch engine's bit flipper disagrees with the
    fault model (flipping the wrong bit), lanes diverge from their
    reference trials and o5 must say so."""
    from repro.runtime import batch as batch_mod
    from repro.runtime.faults import flip_value

    # (program, seed) chosen so at least one drawn flip hits a live
    # register: a wrong-bit flip there cannot be architecturally masked
    module = generate(0, 1).module
    assert check_batch_equivalence(module, seed=0) == []

    monkeypatch.setattr(
        batch_mod, "flip_value",
        lambda value, bit: flip_value(value, (bit + 1) & 63))
    violations = check_batch_equivalence(module, seed=0)
    assert violations and all(v.oracle == "o5" for v in violations)
