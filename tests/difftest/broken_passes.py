"""Deliberately broken transforms the oracle/shrinker tests inject."""
from repro.ir.instructions import Instr, Opcode
from repro.ir.values import Reg


def broken_cse(module):
    """A CSE that wrongly merges identical loads across stores.

    On any program with a same-block load/store/load sequence on one
    address (the generator's rmw shape emits these on purpose), the
    second load starts returning the pre-store value.
    """
    for func in module.functions.values():
        for label in func.block_order():
            block = func.blocks[label]
            seen = {}
            for idx, instr in enumerate(block.instrs):
                if instr.op is Opcode.LOAD and isinstance(instr.args[0], Reg):
                    key = instr.args[0].name
                    if key in seen and instr.dest is not None:
                        block.instrs[idx] = Instr(
                            Opcode.MOV, dest=instr.dest, args=(seen[key],)
                        )
                    elif instr.dest is not None:
                        seen[key] = instr.dest
