"""Tier-1 smoke: a fixed-seed difftest run must be clean and independent
of the worker count, and the CLI wiring must hold together."""
import pytest

from repro.cli import main
from repro.difftest import render_report, run_difftest

pytestmark = pytest.mark.difftest

SMOKE_SEED = 0
SMOKE_N = 15


def test_fixed_seed_smoke_is_clean():
    report = run_difftest(seed=SMOKE_SEED, n=SMOKE_N, oracle="all", jobs=1)
    assert report.violations == [], render_report(report)
    assert len(report.records) == SMOKE_N
    assert [r.index for r in report.records] == list(range(SMOKE_N))


def test_report_is_byte_identical_across_jobs():
    serial = run_difftest(seed=SMOKE_SEED, n=SMOKE_N, jobs=1)
    sharded = run_difftest(seed=SMOKE_SEED, n=SMOKE_N, jobs=2, chunk=4)
    assert render_report(serial) == render_report(sharded)


def test_single_oracle_selection():
    report = run_difftest(seed=SMOKE_SEED, n=6, oracle="o2")
    assert report.violations == []
    assert all(r.o3_landed == 0 for r in report.records)


def test_rejects_bad_arguments():
    with pytest.raises(ValueError, match="unknown oracle"):
        run_difftest(seed=0, n=5, oracle="o9")
    with pytest.raises(ValueError, match="n must be positive"):
        run_difftest(seed=0, n=0)


def test_cli_difftest_smoke(capsys):
    code = main(["difftest", "--seed", "0", "--n", "6"])
    assert code == 0
    out = capsys.readouterr().out
    assert "difftest: seed=0 n=6 oracle=all" in out
    assert "violations: 0" in out
