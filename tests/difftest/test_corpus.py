"""Replay the checked-in regression corpus.

Every ``.ir`` file under ``difftest/corpus/`` is parsed, verified,
round-tripped and executed; ``; expect-return`` / ``; expect-out-sum``
header comments pin the fault-free semantics, so a regression in the
parser, verifier, printer or interpreter shows up as a corpus diff.
"""
import math
import os

import pytest

from repro.difftest.oracles import check_roundtrip, execute_module
from repro.ir.parser import parse_module
from repro.ir.verifier import verify_module

pytestmark = pytest.mark.difftest

CORPUS_DIR = os.path.join(
    os.path.dirname(__file__), os.pardir, os.pardir, "difftest", "corpus"
)


def corpus_files():
    if not os.path.isdir(CORPUS_DIR):
        return []
    return sorted(
        f for f in os.listdir(CORPUS_DIR) if f.endswith(".ir")
    )


def _expectations(text):
    out = {}
    for line in text.splitlines():
        line = line.strip()
        if line.startswith("; expect-return "):
            out["return"] = float(line.split()[-1])
        elif line.startswith("; expect-out-sum "):
            out["out_sum"] = float(line.split()[-1])
    return out


def test_corpus_is_seeded():
    assert len(corpus_files()) >= 3, (
        "the regression corpus must hold at least the three seed programs"
    )


@pytest.mark.parametrize("filename", corpus_files())
def test_corpus_entry_replays(filename):
    with open(os.path.join(CORPUS_DIR, filename), encoding="utf-8") as handle:
        text = handle.read()
    module = parse_module(text)
    verify_module(module)
    assert check_roundtrip(module) == []

    result = execute_module(module)
    expect = _expectations(text)
    assert expect, f"{filename} pins no expectations"
    if "return" in expect:
        assert result.value == expect["return"], filename
    if "out_sum" in expect:
        assert math.fsum(result.globals["out"]) == expect["out_sum"], filename
