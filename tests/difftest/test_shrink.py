"""The shrinker must reduce a real miscompile to a tiny counterexample."""
import pytest

from repro.difftest import generate, module_copy, shrink_module, instruction_count
from repro.difftest.oracles import _state_diff, execute_module
from repro.ir.printer import format_module
from repro.ir.parser import parse_module
from repro.ir.verifier import verify_module

from .broken_passes import broken_cse

pytestmark = pytest.mark.difftest


def _miscompiled_by_broken_cse(module) -> bool:
    baseline = execute_module(module)
    work = module_copy(module)
    broken_cse(work)
    verify_module(work)
    return _state_diff(baseline, execute_module(work)) is not None


def _first_failing_program():
    for index in range(40):
        program = generate(0, index)
        if program.shape != "rmw":
            continue
        try:
            if _miscompiled_by_broken_cse(program.module):
                return program
        except Exception:
            continue
    raise AssertionError("no seed-0 program exposes the broken CSE")


def test_broken_pass_shrinks_to_small_counterexample():
    program = _first_failing_program()
    original = instruction_count(program.module)
    small = shrink_module(program.module, _miscompiled_by_broken_cse)
    reduced = instruction_count(small)
    assert reduced <= 15, f"only shrank {original} -> {reduced}"
    # the minimized module is still a valid, replayable failure
    verify_module(small)
    assert _miscompiled_by_broken_cse(small)
    replayed = parse_module(format_module(small))
    assert _miscompiled_by_broken_cse(replayed)
    # and the input module was not mutated by shrinking
    assert instruction_count(program.module) == original


def test_shrink_rejects_passing_input():
    program = generate(0, 0)
    with pytest.raises(ValueError, match="does not fail"):
        shrink_module(program.module, lambda module: False)


_TINY_FAILING = """\
module tiny
global @out 4 f64
func @main() -> f64 {
entry:
  %p = mov @out
  %a = load %p : f64
  store 1.0:f64, %p
  %b = load %p : f64
  store %b, %p
  ret %a
}
"""


def test_shrink_handles_handwritten_module():
    module = parse_module(_TINY_FAILING)
    assert _miscompiled_by_broken_cse(module)
    small = shrink_module(module, _miscompiled_by_broken_cse)
    assert instruction_count(small) <= instruction_count(module)
    assert _miscompiled_by_broken_cse(small)


def test_shrink_treats_predicate_crash_as_pass():
    """A predicate exception on a candidate must not abort the shrink."""
    module = parse_module(_TINY_FAILING)

    def flaky(candidate):
        if instruction_count(candidate) < 5:
            raise RuntimeError("candidate got too small to even run")
        return _miscompiled_by_broken_cse(candidate)

    small = shrink_module(module, flaky)
    assert instruction_count(small) >= 5
    assert _miscompiled_by_broken_cse(small)
