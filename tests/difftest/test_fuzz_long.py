"""The long fuzz loop — excluded from the default run like the campaign
suites (select with ``-m "slow and difftest"``)."""
import pytest

from repro.difftest import render_report, run_difftest

pytestmark = [pytest.mark.difftest, pytest.mark.slow]


def test_two_hundred_programs_zero_violations():
    report = run_difftest(seed=0, n=200, oracle="all", jobs=1)
    assert report.violations == [], render_report(report)
    # every shape appears and swift checkers demonstrably fire
    shapes = {r.shape for r in report.records}
    assert shapes == {"reduction", "elementwise", "rmw"}
    detected, landed = report.swift_liveness
    assert landed > 100
    assert detected > 0


def test_alternate_seed_stream_is_clean():
    report = run_difftest(seed=1234, n=60, oracle="all", jobs=1)
    assert report.violations == [], render_report(report)
