"""O7: incremental campaigns compose exactly (phased generator + oracle)."""
import pytest

from repro.difftest import (
    check_incremental_equivalence,
    generate_phased,
    mutate_function,
)
from repro.difftest.oracles import execute_module
from repro.ir.printer import format_module
from repro.ir.verifier import verify_module


class TestPhasedGenerator:
    def test_pinned_stream_and_structure(self):
        program = generate_phased(0, 1)
        again = generate_phased(0, 1)
        assert format_module(program.module) == format_module(again.module)
        names = set(program.module.functions)
        assert "main" in names
        assert sum(1 for n in names if n.startswith("phase")) >= 2
        verify_module(program.module)

    def test_default_shapes_unchanged(self):
        """phased is a separate stream: the default generator's SHAPES must
        not have picked it up (that would shift every pinned program)."""
        from repro.difftest import SHAPES

        assert "phased" not in SHAPES

    def test_phases_run_and_step_counts_are_value_independent(self):
        module = generate_phased(2, 5).module
        steps = execute_module(module).steps
        mutated = mutate_function(
            module, sorted(n for n in module.functions if n != "main")[0],
            seed=9)
        assert execute_module(mutated).steps == steps


class TestMutateFunction:
    def test_changes_exactly_one_function(self):
        module = generate_phased(1, 3).module
        victim = sorted(n for n in module.functions if n != "main")[0]
        mutated = mutate_function(module, victim, seed=0)
        for name in module.functions:
            same = _func_text(module, name) == _func_text(mutated, name)
            assert same == (name != victim), name
        verify_module(mutated)

    def test_is_deterministic_and_leaves_input_untouched(self):
        module = generate_phased(1, 3).module
        before = format_module(module)
        victim = sorted(n for n in module.functions if n != "main")[0]
        a = mutate_function(module, victim, seed=7)
        b = mutate_function(module, victim, seed=7)
        assert format_module(a) == format_module(b)
        assert format_module(module) == before

    def test_rejects_function_with_nothing_to_swap(self):
        module = generate_phased(1, 3).module
        with pytest.raises((ValueError, KeyError)):
            mutate_function(module, "no_such_function", seed=0)


def _func_text(module, name):
    from repro.ir.printer import format_function

    return format_function(module.get_function(name))


class TestO7:
    @pytest.mark.parametrize("protection", [None, "swift", "swift-r"])
    def test_incremental_equals_scratch(self, protection):
        module = generate_phased(0, 2).module
        violations = check_incremental_equivalence(
            module, protection, trials=18, seed=4)
        assert violations == []

    def test_multiple_indices_clean(self):
        for index in range(4):
            module = generate_phased(5, index).module
            assert check_incremental_equivalence(
                module, "swift", trials=12, seed=index) == []

    def test_detects_a_stale_store(self, monkeypatch):
        """If reuse served tallies that no longer match the program, the
        oracle must flag it — simulated by mutating an *extra* function
        behind the incremental run's back so the stored tallies it reuses
        describe code that no longer exists."""
        from repro.difftest import oracles

        real = oracles.run_campaign_stratified if hasattr(
            oracles, "run_campaign_stratified") else None
        assert real is None  # imported lazily inside the oracle

        from repro.eval import incremental

        original_get = incremental.SectionStore.get

        def poisoned_get(self, key):
            part = original_get(self, key)
            if part is not None and part.tallies:
                # corrupt one tally: reuse now disagrees with scratch
                outcome = next(iter(part.tallies))
                part.tallies[outcome] += 1
                part.trials += 1
            return part

        monkeypatch.setattr(incremental.SectionStore, "get", poisoned_get)
        module = generate_phased(0, 2).module
        violations = check_incremental_equivalence(
            module, "swift", trials=18, seed=4)
        assert violations, "oracle accepted corrupted reused tallies"
