"""O6: exhaustive single-skip model checking.

A counting pre-run names every in-region dynamic instruction; the
oracle then injects a skip at each named site — per-trial on the
reference interpreter and as one lane of a batched slab — and demands
(1) the enumeration provably covers the dynamic stream, (2) every lane
matches its reference trial byte-for-byte, and (3) under the
duplication schemes a skipped *shadow* instruction never ends as
silent corruption.  The fast subset runs on every tier-1 pass; full
multi-scheme sweeps hide behind the ``slow`` marker.
"""
import pytest

from repro.difftest.generator import generate
from repro.difftest.oracles import (
    PROTECTIONS,
    skip_site_map,
    check_skip_exhaustive,
)
from repro.difftest.runner import ORACLES, check_index

pytestmark = [pytest.mark.difftest]


def test_o6_is_registered():
    assert "o6" in ORACLES


@pytest.mark.parametrize("index,site_cap", [(0, 400), (3, 400), (1, 600)])
def test_generated_programs_exhaustive(index, site_cap):
    """At least three generated programs with *exhaustive* skip-site
    maps — every dynamic instruction enumerated (asserted against the
    counting pre-run total by the oracle) and every site byte-identical
    between reference and batch injection.  Index 1 runs with a raised
    cap so all three maps are full enumerations, not stride samples."""
    module = generate(0, index).module
    assert skip_site_map(module, site_cap=site_cap).exhaustive
    assert check_skip_exhaustive(module, site_cap=site_cap) == []


@pytest.mark.parametrize("index", range(3))
def test_generated_programs_via_runner(index):
    """The runner's o6 mode end to end: protection assignment, seeding
    and violation plumbing included."""
    record = check_index(23, index, oracle="o6")
    assert record.violations == []


def test_site_map_matches_counting_run():
    """The standalone map half of O6: every site enumerated, each named
    by the opcode the counting pre-run saw at that step."""
    module = generate(0, 0).module
    smap = skip_site_map(module)
    assert smap.exhaustive
    assert smap.total_sites == len(smap.sites)
    assert sum(smap.tally().values()) == smap.total_sites
    assert all(s.outcome in ("detected", "masked", "sdc", "trap", "hang")
               for s in smap.sites)


def test_site_cap_forces_sampling():
    module = generate(0, 0).module
    smap = skip_site_map(module, site_cap=10)
    assert not smap.exhaustive
    assert len(smap.sites) <= 10 < smap.total_sites


def test_unprotected_program_has_skip_sdc():
    """Sanity of the vulnerability story: with no protection, some
    skipped store/accumulate sites must corrupt the output silently."""
    module = generate(0, 0).module
    assert skip_site_map(module).tally().get("sdc", 0) > 0


def test_protection_reduces_skip_sdc_rate():
    module = generate(0, 0).module
    plain = skip_site_map(module)
    prot = skip_site_map(module, "swift-r")
    rate = lambda m: m.tally().get("sdc", 0) / len(m.sites)
    assert rate(prot) < rate(plain)


def test_o6_detects_a_seeded_skip_divergence(monkeypatch):
    """Sensitivity: if the batch engine mis-times its skip window
    (arming one instruction late), lanes diverge from their reference
    trials and o6 must say so."""
    from repro.runtime import batch as batch_mod

    module = generate(0, 0).module
    assert check_skip_exhaustive(module) == []

    real_inject = batch_mod.BatchExecutor._inject_lane

    def late_inject(self, g, row, lane):
        fired = real_inject(self, g, row, lane)
        if fired and self._skip[lane]:
            self._skip[lane] += 1  # drop one extra instruction
        return fired

    monkeypatch.setattr(batch_mod.BatchExecutor, "_inject_lane", late_inject)
    violations = check_skip_exhaustive(module)
    assert violations and all(v.oracle == "o6" for v in violations)


@pytest.mark.slow
@pytest.mark.parametrize("protection", sorted(PROTECTIONS))
def test_full_sweep_under_every_protection(protection):
    """Every scheme, three programs, bursts included."""
    for index in range(3):
        module = generate(0, index).module
        assert check_skip_exhaustive(module, protection, burst=True) == []


@pytest.mark.slow
def test_full_sweep_generator_stream():
    for index in range(10):
        record = check_index(5, index, oracle="o6")
        assert record.violations == []
