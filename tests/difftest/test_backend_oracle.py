"""O4 (backend equivalence) oracle tests."""
import dataclasses

import pytest

from repro.difftest import check_backend_equivalence, run_difftest
from repro.difftest.generator import generate
from repro.difftest.runner import ORACLES, check_index, plan_index
from repro.ir import parse_module
from repro.runtime import backend as backend_mod

pytestmark = [pytest.mark.difftest, pytest.mark.backend]


def test_o4_clean_on_generated_programs():
    for index in range(25):
        program = generate(0, index)
        _, protection = plan_index(0, index)
        violations = check_backend_equivalence(program.module, protection)
        assert violations == [], violations[0].detail


def test_o4_registered_with_runner():
    assert "o4" in ORACLES
    record = check_index(0, 3, oracle="o4")
    assert record.violations == []


def test_o4_report_clean():
    report = run_difftest(seed=0, n=8, oracle="o4")
    assert report.violations == []


def test_o4_flags_step_divergence(monkeypatch):
    """A backend that miscounts steps must produce an O4 violation."""
    real = backend_mod.make_executor

    class _Skewed:
        def __init__(self, inner):
            self._inner = inner

        def register_intrinsics(self, table):
            self._inner.register_intrinsics(table)

        def run(self, name, args):
            result = self._inner.run(name, args)
            return dataclasses.replace(result, steps=result.steps + 1)

    def skewed(module, backend=None, **kwargs):
        executor = real(module, backend=backend, **kwargs)
        if backend == "compiled":
            return _Skewed(executor)
        return executor

    monkeypatch.setattr("repro.difftest.oracles.make_executor", skewed)
    module = parse_module(
        "func @main() -> f64 {\nentry:\n  ret 1.0:f64\n}\n")
    violations = check_backend_equivalence(module)
    assert len(violations) == 1
    assert "step count" in violations[0].detail


def test_o4_flags_trap_divergence(monkeypatch):
    """A backend that swallows a trap must produce an O4 violation."""
    real = backend_mod.make_executor

    class _Lenient:
        def __init__(self, module, kwargs):
            self._module = module
            self._kwargs = kwargs

        def register_intrinsics(self, table):
            pass

        def run(self, name, args):
            clean = parse_module(
                "func @main() -> f64 {\nentry:\n  ret 0.0:f64\n}\n")
            return real(clean, backend="ref").run(name, args)

    def lenient(module, backend=None, **kwargs):
        if backend == "compiled":
            return _Lenient(module, kwargs)
        return real(module, backend=backend, **kwargs)

    monkeypatch.setattr("repro.difftest.oracles.make_executor", lenient)
    module = parse_module(
        "func @main() -> f64 {\nentry:\n  %a = sdiv 1:i64, 0:i64\n"
        "  %f = sitofp %a\n  ret %f\n}\n")
    violations = check_backend_equivalence(module)
    assert violations and "ref run trap" in violations[0].detail
