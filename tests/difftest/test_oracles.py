"""Each oracle must pass on healthy pipelines and fire on broken ones."""
import pytest

from repro.difftest import (
    check_fault_metamorphic,
    check_pipeline,
    check_roundtrip,
    execute_module,
    generate,
    module_copy,
)
from repro.difftest.oracles import _state_diff, check_protection_coverage
from repro.ir.function import Function
from repro.ir.instructions import Instr, Opcode
from repro.ir.module import Module
from repro.ir.types import F64
from repro.ir.values import Const
from repro.transforms import apply_swift
from repro.ir.verifier import verify_module

from .broken_passes import broken_cse

pytestmark = pytest.mark.difftest


# -- healthy pipelines pass ---------------------------------------------------
@pytest.mark.parametrize("pipeline", [
    ("dce",), ("cse", "simplify"), ("licm", "dce", "swift"),
    ("simplify", "swift-r"), ("clone", "rskip"),
])
def test_clean_pipelines_are_equivalent(pipeline):
    for index in (0, 2, 5):
        violations, transformed, _ = check_pipeline(
            generate(0, index).module, pipeline)
        assert violations == [], (index, pipeline, violations)
        assert transformed is not None


def test_clean_protections_uphold_fault_contract():
    for protection in ("swift", "swift-r", "rskip"):
        violations = check_fault_metamorphic(
            generate(0, 2).module, protection, samples=6, seed=1)
        assert violations == [], (protection, violations)


# -- O1 fires on a miscompiling pass ------------------------------------------
def test_o1_fires_on_broken_cse():
    """The rmw shape's load/store/load sequence exposes cross-store merging."""
    fired = False
    for index in range(40):
        program = generate(0, index)
        if program.shape != "rmw":
            continue
        baseline = execute_module(module_copy(program.module))
        work = module_copy(program.module)
        broken_cse(work)
        verify_module(work)
        if _state_diff(baseline, execute_module(work)) is not None:
            fired = True
            break
    assert fired, "broken CSE never changed an rmw program's output"


def test_o1_fires_on_crashing_pass(monkeypatch):
    from repro.difftest import oracles

    def exploding_pass(module):
        raise RuntimeError("boom")

    monkeypatch.setitem(oracles.CLEANUP_PASSES, "dce", exploding_pass)
    violations, transformed, _ = check_pipeline(generate(0, 0).module, ("dce",))
    assert transformed is None
    assert any("raised RuntimeError" in v.detail for v in violations)


# -- O2 fires on unprintable modules ------------------------------------------
def test_o2_fires_on_unparseable_name():
    module = Module("bad")
    func = Function("has-dashes", [], F64)
    module.add_function(func)
    block = func.add_block("entry")
    block.append(Instr(Opcode.RET, args=(Const(0.0, F64),)))
    violations = check_roundtrip(module)
    assert violations and violations[0].oracle == "o2"


def test_o2_passes_on_generated_and_transformed_modules():
    module = generate(0, 1).module
    assert check_roundtrip(module) == []
    protected = module_copy(module)
    apply_swift(protected)
    assert check_roundtrip(protected) == []


# -- O3 fires on a no-op protection -------------------------------------------
def test_o3_coverage_fires_on_checkerless_swift():
    """A 'swift' that replicates but never inserts checkers is exactly
    ``apply_swift(sync_points=())`` — the static coverage check sees the
    unguarded sync points no dynamic sample could prove absent."""
    module = module_copy(generate(0, 2).module)
    apply_swift(module, sync_points=())
    violations = check_protection_coverage(module, "swift")
    assert any("unguarded sync operand" in v.detail for v in violations)


def test_o3_coverage_fires_on_wholly_inert_protection():
    """A protection pass that only sets the attribute is caught too."""
    module = module_copy(generate(0, 2).module)
    for func in module.functions.values():
        func.attrs["protected"] = "swift"
    violations = check_protection_coverage(module, "swift")
    assert any("no shadow registers" in v.detail for v in violations)


def test_o3_checkerless_swift_yields_violation_end_to_end():
    module = generate(0, 2).module
    prepared = module_copy(module)
    apply_swift(prepared, sync_points=())
    violations = check_fault_metamorphic(
        module, "swift", samples=4, seed=0,
        prepared=prepared, intrinsics={})
    assert violations, "checkerless swift passed the fault oracle"


# -- O3 over protocol families (workload-backed) ------------------------------
def _workload_o3(workload_name, protection, samples=6, seed=1, stats=None):
    from repro.workloads import get_workload

    workload = get_workload(workload_name)
    module = workload.build()
    inp = workload.test_inputs(1, seed=3, scale=0.35)[0]
    return check_fault_metamorphic(
        module, protection, samples=samples, seed=seed, stats=stats,
        main_args=inp.args,
        memory_factory=lambda: workload.fresh_memory(module, inp),
    )


def test_o3_descriptor_follows_verify_as():
    from repro.difftest.oracles import o3_descriptor

    # REPLAY<n> samples windows, so its full detected-or-masked contract
    # only holds at the every-window point; verify_as redirects there.
    assert o3_descriptor("replay2").name == "REPLAY1"
    assert o3_descriptor("replay").name == "REPLAY1"
    # non-redirecting schemes verify as themselves
    assert o3_descriptor("ckpt8").name == "CKPT8"
    assert o3_descriptor("swift-r").name == "SWIFT-R"


def test_o3_protocol_contracts_hold_on_workloads():
    """REPLAY upholds detected-or-masked and CKPT exactly-masked under
    region-scoped flips, with the checker demonstrably live (flips
    land)."""
    for protection in ("replay", "ckpt"):
        stats = {}
        violations = _workload_o3("conv1d", protection, stats=stats)
        assert violations == [], (protection, violations)
        assert stats.get("landed", 0) > 0, (protection, stats)


def test_o3_unprotected_scheme_is_vacuous():
    assert check_fault_metamorphic(generate(0, 2).module, "none") == []


def test_o3_fires_on_blind_protocol_checker(monkeypatch):
    """Teeth: neutralize the protocol comparison (every re-execution
    "matches") and the region flips must surface as violations."""
    import repro.core.protocol as protocol

    monkeypatch.setattr(protocol, "_same", lambda a, b: True)
    fired = []
    for protection in ("replay", "ckpt"):
        stats = {}
        violations = _workload_o3(
            "conv1d", protection, samples=8, seed=2, stats=stats)
        if violations:
            fired.append(protection)
    assert fired, "blind protocol checker passed the fault oracle"
