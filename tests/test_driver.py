"""The high-level compiler driver."""
import pytest

from repro import CompiledProgram, SCHEMES, compile_protected
from repro.core import RSkipConfig
from repro.ir import verify_module
from repro.runtime import FaultDetectedError, outputs_equal

from .conftest import build_call_module, build_dot_module, run_main, seed_memory


def golden():
    _, mem = run_main(build_dot_module(), [6, 8])
    return mem.read_global("out", 6)


class TestCompileProtected:
    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_all_schemes_preserve_output(self, scheme):
        module = build_dot_module()
        compiled = compile_protected(module, scheme=scheme)
        mem = seed_memory(module)
        compiled.interpreter(mem).run("main", [6, 8])
        assert outputs_equal(golden(), mem.read_global("out", 6))

    def test_unknown_scheme(self):
        with pytest.raises(ValueError, match="unknown scheme"):
            compile_protected(build_dot_module(), scheme="tmr9000")

    def test_optimizations_reported(self):
        compiled = compile_protected(build_dot_module(), scheme="none")
        assert set(compiled.optimizations) == {"constfold", "licm", "cse", "dce"}

    def test_optimize_toggle(self):
        compiled = compile_protected(
            build_dot_module(), scheme="none", optimize=False
        )
        assert compiled.optimizations == {}

    def test_rskip_exposes_stats(self):
        module = build_dot_module()
        compiled = compile_protected(module, scheme="rskip",
                                     config=RSkipConfig(acceptable_range=1.0))
        mem = seed_memory(module)
        compiled.interpreter(mem).run("main", [6, 8])
        assert compiled.skip_stats is not None
        assert compiled.skip_stats.elements > 0

    def test_non_rskip_has_no_stats(self):
        compiled = compile_protected(build_dot_module(), scheme="swift-r")
        assert compiled.skip_stats is None

    def test_swift_links_detection_intrinsic(self):
        compiled = compile_protected(build_dot_module(), scheme="swift")
        from repro.transforms import DETECT_INTRINSIC

        handler = compiled.intrinsics[DETECT_INTRINSIC]
        with pytest.raises(FaultDetectedError):
            handler(None, ())

    def test_module_verifies_after_compilation(self):
        module = build_call_module()
        compile_protected(module, scheme="rskip")
        verify_module(module)

    def test_ar_overrides_passed_through(self):
        module = build_dot_module()
        compiled = compile_protected(
            module, scheme="rskip", ar_overrides={"main:*": 0.0}
        )
        runtime = compiled.application.runtime.loop(0)
        assert runtime.config.acceptable_range == 0.0

    def test_sync_points_passed_through(self):
        m_all = build_dot_module()
        compile_protected(m_all, scheme="swift-r")
        m_min = build_dot_module()
        compile_protected(m_min, scheme="swift-r", sync_points={"store"})
        r_all, _ = run_main(m_all, [6, 8])
        r_min, _ = run_main(m_min, [6, 8])
        assert r_min.steps < r_all.steps
