"""End-to-end daemon tests over real sockets: dedup of concurrent
identical requests, keep-alive, campaign jobs, and the kill/restart
checkpoint-resume byte-identity contract."""
import asyncio
import json
import os
import time

import pytest

from repro.eval.campaign_engine import run_campaign_parallel
from repro.pipeline import reset_cache
from repro.serve import ServeApp
from repro.workloads import get_workload


@pytest.fixture(autouse=True)
def _memory_cache(monkeypatch):
    """Serve tests share the process-global artifact cache; keep it in
    memory mode and fresh so no test leaks warm entries into another."""
    monkeypatch.setenv("REPRO_CACHE", "mem")
    reset_cache()
    yield
    reset_cache()


async def _request(host, port, method, path, body=None, headers=None,
                   close=True):
    reader, writer = await asyncio.open_connection(host, port)
    try:
        return await _request_on(reader, writer, method, path, body,
                                 headers, close)
    finally:
        writer.close()
        await writer.wait_closed()


async def _request_on(reader, writer, method, path, body=None, headers=None,
                      close=True):
    payload = json.dumps(body).encode() if body is not None else b""
    head = [f"{method} {path} HTTP/1.1", "host: test"]
    if headers:
        head.extend(f"{k}: {v}" for k, v in headers.items())
    if payload:
        head.append(f"content-length: {len(payload)}")
    if close:
        head.append("connection: close")
    writer.write(("\r\n".join(head) + "\r\n\r\n").encode() + payload)
    await writer.drain()
    status_line = await reader.readline()
    status = int(status_line.split(b" ", 2)[1])
    response_headers = {}
    while True:
        line = (await reader.readline()).rstrip(b"\r\n")
        if not line:
            break
        name, _, value = line.decode().partition(": ")
        response_headers[name] = value
    length = int(response_headers.get("content-length", "0"))
    raw = await reader.readexactly(length)
    data = json.loads(raw) if raw.strip() else None
    return status, data, response_headers


def _serve_test(coro_factory, **app_kwargs):
    """Run *coro_factory(app)* against a freshly started daemon."""

    async def go():
        app = ServeApp(port=0, **app_kwargs)
        resumed = await app.start()
        try:
            return await coro_factory(app, resumed)
        finally:
            await app.stop()

    return asyncio.run(go())


class TestEndpoints:
    def test_healthz_stats_and_routing(self, tmp_path):
        async def scenario(app, _resumed):
            h, p = app.host, app.port
            ok = await _request(h, p, "GET", "/healthz")
            stats = await _request(h, p, "GET", "/stats")
            missing = await _request(h, p, "GET", "/nope")
            wrong_method = await _request(h, p, "GET", "/protect")
            return ok, stats, missing, wrong_method

        ok, stats, missing, wrong_method = _serve_test(
            scenario, state_dir=str(tmp_path))
        assert ok[0] == 200 and ok[1] == {"ok": True}
        assert stats[0] == 200
        for section in ("dedup", "admission", "jobs", "cache"):
            assert section in stats[1]
        assert missing[0] == 404
        assert wrong_method[0] == 405

    def test_keep_alive_serves_multiple_requests(self, tmp_path):
        async def scenario(app, _resumed):
            reader, writer = await asyncio.open_connection(app.host, app.port)
            try:
                first = await _request_on(reader, writer, "GET", "/healthz",
                                          close=False)
                second = await _request_on(reader, writer, "GET", "/stats",
                                           close=True)
            finally:
                writer.close()
                await writer.wait_closed()
            return first, second

        first, second = _serve_test(scenario, state_dir=str(tmp_path))
        assert first[0] == 200 and first[2]["connection"] == "keep-alive"
        assert second[0] == 200 and second[2]["connection"] == "close"

    def test_concurrent_identical_protects_compute_once(self, tmp_path):
        """The ISSUE's acceptance criterion: N identical in-flight
        /protect requests cost one computation; the rest are dedup hits."""
        async def scenario(app, _resumed):
            h, p = app.host, app.port
            body = {"workload": "blackscholes", "scheme": "AR20"}
            results = await asyncio.gather(
                *[_request(h, p, "POST", "/protect", body) for _ in range(4)])
            stats = await _request(h, p, "GET", "/stats")
            return results, stats[1]

        results, stats = _serve_test(scenario, state_dir=str(tmp_path))
        assert all(status == 200 for status, _, _ in results)
        flags = sorted(data["deduped"] for _, data, _ in results)
        assert flags == [False, True, True, True]
        assert stats["dedup"]["computations"] == 1
        assert stats["dedup"]["dedup_hits"] == 3
        # every follower sees the leader's exact artifact
        modules = {data["module"] for _, data, _ in results}
        assert len(modules) == 1

    def test_protect_from_ir_text(self, tmp_path):
        from repro.ir.printer import format_module

        source = format_module(get_workload("conv1d").build())

        async def scenario(app, _resumed):
            return await _request(app.host, app.port, "POST", "/protect",
                                  {"ir": source, "scheme": "SWIFT"})

        status, data, _ = _serve_test(scenario, state_dir=str(tmp_path))
        assert status == 200
        assert data["scheme"] == "SWIFT"
        assert data["source"] == "ir"
        assert "swift" in data["passes"]
        assert len(data["module"]) > len(source)

    def test_run_endpoint_matches_cli_semantics(self, tmp_path):
        async def scenario(app, _resumed):
            body = {"workload": "conv1d", "scheme": "AR50", "scale": 0.35,
                    "seed": 1}
            first = await _request(app.host, app.port, "POST", "/run", body)
            second = await _request(app.host, app.port, "POST", "/run", body)
            return first, second

        first, second = _serve_test(scenario, state_dir=str(tmp_path))
        assert first[0] == 200 and second[0] == 200
        assert first[1]["correct"] is True
        assert first[1]["skip_rate"] is not None
        # deterministic measurement: repeated requests agree exactly
        a, b = dict(first[1]), dict(second[1])
        a.pop("deduped"), b.pop("deduped")
        assert a == b

    def test_train_endpoint(self, tmp_path):
        async def scenario(app, _resumed):
            return await _request(
                app.host, app.port, "POST", "/train",
                {"workload": "blackscholes", "scheme": "AR20",
                 "scale": 0.35})

        status, data, _ = _serve_test(scenario, state_dir=str(tmp_path))
        assert status == 200
        assert data["acceptable_range"] == 0.2
        assert data["trained_loops"]

    def test_manifest_written_per_request(self, tmp_path):
        async def scenario(app, _resumed):
            await _request(app.host, app.port, "POST", "/run",
                           {"workload": "conv1d", "scheme": "UNSAFE",
                            "scale": 0.35})
            return app.manifests_dir

        manifests_dir = _serve_test(scenario, state_dir=str(tmp_path))
        names = [n for n in os.listdir(manifests_dir) if n.endswith(".json")]
        assert len(names) == 1
        with open(os.path.join(manifests_dir, names[0]),
                  encoding="utf-8") as handle:
            manifest = json.load(handle)
        assert manifest["command"] == "serve:/run"
        assert manifest["params"]["workload"] == "conv1d"
        assert manifest["params"]["deduped"] is False


class TestCampaignJobs:
    PARAMS = {"workload": "conv1d", "scheme": "UNSAFE", "trials": 8,
              "seed": 3, "scale": 0.35}

    def _reference_result(self):
        """What the CLI computes at the same parameters (jobs.py mirrors
        `repro campaign`: jobs=1, the manager's chunk, sfi scale cap)."""
        from repro.serve.jobs import DEFAULT_JOB_CHUNK

        return run_campaign_parallel(
            get_workload("conv1d"), "UNSAFE", trials=self.PARAMS["trials"],
            seed=self.PARAMS["seed"], scale=self.PARAMS["scale"],
            jobs=1, chunk=DEFAULT_JOB_CHUNK,
        )

    async def _poll_until_final(self, app, job_id, deadline=120.0):
        t0 = time.monotonic()
        while True:
            status, data, _ = await _request(
                app.host, app.port, "GET", f"/campaigns/{job_id}")
            assert status == 200
            if data["job"]["status"] in ("done", "failed"):
                return data["job"]
            assert time.monotonic() - t0 < deadline
            await asyncio.sleep(0.05)

    def test_job_lifecycle_and_cli_byte_identity(self, tmp_path):
        async def scenario(app, _resumed):
            h, p = app.host, app.port
            status, data, _ = await _request(h, p, "POST", "/campaigns",
                                             self.PARAMS)
            assert status == 202
            job_id = data["job"]["id"]
            listed = await _request(h, p, "GET", "/campaigns")
            assert any(j["id"] == job_id for j in listed[1]["jobs"])
            return await self._poll_until_final(app, job_id)

        job = _serve_test(scenario, state_dir=str(tmp_path))
        assert job["status"] == "done", job["error"]
        assert job["done_trials"] == self.PARAMS["trials"]
        reference = self._reference_result()
        assert (json.dumps(job["result"], sort_keys=True)
                == json.dumps(reference.to_dict(), sort_keys=True))

    def test_unknown_job_is_404(self, tmp_path):
        async def scenario(app, _resumed):
            return await _request(app.host, app.port, "GET",
                                  "/campaigns/nope")

        assert _serve_test(scenario, state_dir=str(tmp_path))[0] == 404

    def test_killed_job_resumes_after_restart_byte_identical(self, tmp_path):
        """The crash-recovery acceptance test, with the kill made
        deterministic: a campaign is aborted right after its first chunk
        was durably checkpointed (exactly the state a SIGKILLed daemon
        leaves behind), its record persisted as `running`, and a fresh
        daemon started over the same state dir.  Recovery must resume
        from the checkpoint and produce tallies byte-identical to the
        CLI's uninterrupted campaign."""
        from repro.serve.jobs import DEFAULT_JOB_CHUNK

        state = str(tmp_path)
        jobs_dir = os.path.join(state, "jobs")
        checkpoints_dir = os.path.join(state, "checkpoints")
        os.makedirs(jobs_dir)
        os.makedirs(checkpoints_dir)
        job_id = "0000000000000-0001-dead"
        checkpoint = os.path.join(checkpoints_dir, f"{job_id}.json")

        class Killed(Exception):
            pass

        def kill_after_first_chunk(done, total, _elapsed):
            if done >= DEFAULT_JOB_CHUNK:
                raise Killed

        with pytest.raises(Killed):
            run_campaign_parallel(
                get_workload("conv1d"), "UNSAFE",
                trials=self.PARAMS["trials"], seed=self.PARAMS["seed"],
                scale=self.PARAMS["scale"], jobs=1, chunk=DEFAULT_JOB_CHUNK,
                checkpoint=checkpoint, resume=True,
                progress=kill_after_first_chunk,
            )
        assert os.path.exists(checkpoint)  # partial progress survived

        record = {
            "id": job_id,
            "params": {"workload": "conv1d", "scheme": "UNSAFE",
                       "trials": self.PARAMS["trials"],
                       "seed": self.PARAMS["seed"],
                       "scale": self.PARAMS["scale"]},
            "status": "running", "created_at": 1.0, "started_at": 1.0,
            "finished_at": None, "done_trials": DEFAULT_JOB_CHUNK,
            "total_trials": self.PARAMS["trials"], "error": "",
            "result": None, "checkpoint": checkpoint, "restarts": 0,
        }
        with open(os.path.join(jobs_dir, f"{job_id}.json"), "w",
                  encoding="utf-8") as handle:
            json.dump(record, handle)

        async def scenario(app, resumed):
            assert resumed == [job_id]
            return await self._poll_until_final(app, job_id)

        job = _serve_test(scenario, state_dir=state)
        assert job["status"] == "done", job["error"]
        assert job["restarts"] == 1
        assert not os.path.exists(checkpoint)  # spent and cleaned up
        reference = self._reference_result()
        assert (json.dumps(job["result"], sort_keys=True)
                == json.dumps(reference.to_dict(), sort_keys=True))
