"""Unit tests of the serve daemon's building blocks: single-flight
dedup, admission control, job records, and the dispatch-level 429."""
import asyncio
import json
import os

import pytest

from repro.serve import AdmissionGate, DedupRegistry, JobManager, ServeApp
from repro.serve.http import Request
from repro.serve.jobs import JOB_DONE


class TestDedupRegistry:
    def test_concurrent_identical_compute_once(self):
        async def go():
            registry = DedupRegistry()
            gate = asyncio.Event()
            calls = []

            async def factory():
                calls.append(1)
                await gate.wait()
                return {"value": 42}

            tasks = [asyncio.ensure_future(registry.run("k", factory))
                     for _ in range(5)]
            await asyncio.sleep(0)  # all five enter; one leads
            assert len(registry) == 1
            gate.set()
            results = await asyncio.gather(*tasks)
            return registry, calls, results

        registry, calls, results = asyncio.run(go())
        assert len(calls) == 1
        assert registry.computations == 1
        assert registry.dedup_hits == 4
        assert sorted(d for _, d in results) == [False, True, True, True, True]
        values = [r for r, _ in results]
        assert all(v == {"value": 42} for v in values)
        # followers share the leader's object, not a copy
        assert all(v is values[0] for v in values)
        assert len(registry) == 0

    def test_distinct_keys_do_not_dedup(self):
        async def go():
            registry = DedupRegistry()

            async def factory():
                return object()

            a, da = await registry.run("a", factory)
            b, db = await registry.run("b", factory)
            return registry, (da, db), (a, b)

        registry, dedup_flags, (a, b) = asyncio.run(go())
        assert dedup_flags == (False, False)
        assert a is not b
        assert registry.computations == 2
        assert registry.dedup_hits == 0

    def test_leader_failure_propagates_to_followers(self):
        async def go():
            registry = DedupRegistry()
            gate = asyncio.Event()

            async def failing():
                await gate.wait()
                raise RuntimeError("boom")

            leader = asyncio.ensure_future(registry.run("k", failing))
            follower = asyncio.ensure_future(registry.run("k", failing))
            await asyncio.sleep(0)
            gate.set()
            outcomes = await asyncio.gather(
                leader, follower, return_exceptions=True)
            return registry, outcomes

        registry, outcomes = asyncio.run(go())
        assert all(isinstance(o, RuntimeError) for o in outcomes)
        # the failure is not cached: a retry computes afresh
        assert len(registry) == 0

    def test_sequential_requests_are_not_deduped(self):
        """Dedup is only for *in-flight* overlap; completed work is the
        artifact cache's job."""
        async def go():
            registry = DedupRegistry()

            async def factory():
                return 1

            await registry.run("k", factory)
            return await registry.run("k", factory)

        _, deduped = asyncio.run(go())
        assert deduped is False


class TestAdmissionGate:
    def test_bounds_validated(self):
        with pytest.raises(ValueError):
            AdmissionGate(max_inflight=0)
        with pytest.raises(ValueError):
            AdmissionGate(per_client=0)

    def test_global_budget(self):
        gate = AdmissionGate(max_inflight=2, per_client=2)
        assert gate.admit("a") is None
        assert gate.admit("b") is None
        retry = gate.admit("c")
        assert retry is not None and retry > 0
        gate.release("a")
        assert gate.admit("c") is None

    def test_per_client_cap(self):
        gate = AdmissionGate(max_inflight=10, per_client=1)
        assert gate.admit("a") is None
        assert gate.admit("a") is not None  # same client: capped
        assert gate.admit("b") is None      # other clients unaffected
        gate.release("a")
        assert gate.admit("a") is None

    def test_release_bookkeeping(self):
        gate = AdmissionGate(max_inflight=4, per_client=4)
        gate.admit("a")
        gate.admit("a")
        gate.release("a")
        gate.release("a")
        gate.release("a")  # over-release must not go negative
        stats = gate.stats()
        assert stats["inflight"] == 0
        assert stats["clients"] == 0

    def test_stats_counters(self):
        gate = AdmissionGate(max_inflight=1, per_client=1)
        gate.admit("a")
        gate.admit("a")
        stats = gate.stats()
        assert stats["admitted"] == 1
        assert stats["rejected"] == 1


class TestDispatchAdmission:
    """The 429 path at the dispatch level, with a handler we control."""

    def test_second_request_of_capped_client_gets_429(self, tmp_path):
        async def go():
            app = ServeApp(port=0, state_dir=str(tmp_path),
                           workers=1, max_inflight=8, per_client=1)
            blocker = asyncio.Event()

            async def slow_handler(request):
                blocker.set()
                await asyncio.sleep(0.2)
                from repro.serve.http import Response
                return Response(payload={"ok": True})

            app._route = lambda request: (slow_handler, True)
            request = Request(method="POST", path="/protect",
                              headers={"x-repro-client": "tenant-1"})
            first = asyncio.ensure_future(app._dispatch(request))
            await blocker.wait()
            second = await app._dispatch(request)
            first = await first
            await app.stop()
            return first, second

        first, second = asyncio.run(go())
        assert first.status == 200
        assert second.status == 429
        assert second.headers.get("retry-after")
        assert "retry later" in second.payload["error"]


class TestJobManager:
    def test_param_validation(self, tmp_path):
        manager = JobManager(str(tmp_path))
        try:
            for bad in (
                {},                                      # no workload
                {"workload": "nope"},                    # unknown workload
                {"workload": "lud", "trials": 0},        # bad trials
                {"workload": "lud", "trials": "many"},
                {"workload": "lud", "seed": 1.5},
                {"workload": "lud", "scale": 0},
                {"workload": "lud", "scheme": "XX"},
            ):
                with pytest.raises(ValueError):
                    manager.normalize_params(bad)
            params = manager.normalize_params(
                {"workload": "lud", "scheme": "swift", "trials": 3,
                 "scale": 2.0})
            assert params == {"workload": "lud", "scheme": "SWIFT",
                              "trials": 3, "seed": 0, "scale": 0.45}
        finally:
            manager.shutdown()

    def test_submit_runs_to_done_and_persists(self, tmp_path):
        manager = JobManager(str(tmp_path), chunk=2)
        try:
            record = manager.submit(
                {"workload": "conv1d", "scheme": "UNSAFE", "trials": 4,
                 "scale": 0.35})
            deadline = 60
            import time
            t0 = time.time()
            while record.status not in ("done", "failed"):
                assert time.time() - t0 < deadline
                time.sleep(0.05)
            assert record.status == JOB_DONE, record.error
            assert record.done_trials == 4
            assert record.result["trials"] == 4
            # the spent checkpoint is cleaned up; the record persists
            assert not os.path.exists(record.checkpoint)
            with open(manager._record_path(record.id),
                      encoding="utf-8") as handle:
                on_disk = json.load(handle)
            assert on_disk["status"] == "done"
            assert on_disk["result"] == record.result
        finally:
            manager.shutdown()

    def test_recover_skips_finished_and_corrupt_records(self, tmp_path):
        manager = JobManager(str(tmp_path))
        manager.shutdown()
        done = {"id": "001-done", "params": {}, "status": "done",
                "created_at": 0.0, "started_at": None, "finished_at": 1.0,
                "done_trials": 2, "total_trials": 2, "error": "",
                "result": {"trials": 2}, "checkpoint": "", "restarts": 0}
        with open(os.path.join(manager.jobs_dir, "001-done.json"), "w",
                  encoding="utf-8") as handle:
            json.dump(done, handle)
        with open(os.path.join(manager.jobs_dir, "002-junk.json"), "w",
                  encoding="utf-8") as handle:
            handle.write("{nope")
        fresh = JobManager(str(tmp_path))
        try:
            assert fresh.recover() == []
            assert fresh.get("001-done").status == "done"
            assert fresh.get("002-junk") is None
        finally:
            fresh.shutdown()
