"""Unit tests of the minimal HTTP/1.1 layer (no sockets: fed readers)."""
import asyncio
import json

import pytest

from repro.serve.http import (
    MAX_BODY_BYTES,
    HttpError,
    Response,
    encode_response,
    error_response,
    read_request,
)


def _read(raw: bytes):
    async def go():
        reader = asyncio.StreamReader()
        reader.feed_data(raw)
        reader.feed_eof()
        return await read_request(reader, client="10.0.0.9")

    return asyncio.run(go())


class TestReadRequest:
    def test_get_with_query(self):
        request = _read(b"GET /campaigns?limit=3&x=%20y HTTP/1.1\r\n"
                        b"Host: h\r\n\r\n")
        assert request.method == "GET"
        assert request.path == "/campaigns"
        assert request.query == {"limit": "3", "x": " y"}
        assert request.headers["host"] == "h"
        assert request.client == "10.0.0.9"
        assert request.keep_alive

    def test_post_with_json_body(self):
        body = json.dumps({"workload": "lud"}).encode()
        request = _read(b"POST /protect HTTP/1.1\r\n"
                        b"Content-Length: " + str(len(body)).encode() +
                        b"\r\nConnection: close\r\n\r\n" + body)
        assert request.method == "POST"
        assert request.json() == {"workload": "lud"}
        assert not request.keep_alive

    def test_clean_eof_is_none(self):
        assert _read(b"") is None

    def test_truncated_head_is_400(self):
        with pytest.raises(HttpError) as exc:
            _read(b"GET /healthz HTT")
        assert exc.value.status == 400

    def test_truncated_body_is_400(self):
        with pytest.raises(HttpError) as exc:
            _read(b"POST /run HTTP/1.1\r\nContent-Length: 50\r\n\r\nshort")
        assert exc.value.status == 400

    def test_malformed_request_line_is_400(self):
        with pytest.raises(HttpError) as exc:
            _read(b"NONSENSE\r\n\r\n")
        assert exc.value.status == 400

    def test_bad_content_length_is_400(self):
        for bad in (b"abc", b"-5"):
            with pytest.raises(HttpError) as exc:
                _read(b"POST /run HTTP/1.1\r\nContent-Length: " + bad +
                      b"\r\n\r\n")
            assert exc.value.status == 400

    def test_oversized_body_is_413(self):
        with pytest.raises(HttpError) as exc:
            _read(b"POST /run HTTP/1.1\r\nContent-Length: " +
                  str(MAX_BODY_BYTES + 1).encode() + b"\r\n\r\n")
        assert exc.value.status == 413

    def test_chunked_encoding_is_rejected(self):
        with pytest.raises(HttpError) as exc:
            _read(b"POST /run HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n")
        assert exc.value.status == 400

    def test_oversized_head_is_431(self):
        filler = b"X-Pad: " + b"a" * 40_000 + b"\r\n"
        with pytest.raises(HttpError) as exc:
            _read(b"GET / HTTP/1.1\r\n" + filler + b"\r\n")
        assert exc.value.status == 431

    def test_body_json_errors(self):
        body = b"{nope"
        request = _read(b"POST /run HTTP/1.1\r\nContent-Length: " +
                        str(len(body)).encode() + b"\r\n\r\n" + body)
        with pytest.raises(HttpError) as exc:
            request.json()
        assert exc.value.status == 400
        body = b"[1, 2]"
        request = _read(b"POST /run HTTP/1.1\r\nContent-Length: " +
                        str(len(body)).encode() + b"\r\n\r\n" + body)
        with pytest.raises(HttpError) as exc:
            request.json()
        assert exc.value.status == 422

    def test_empty_body_is_empty_object(self):
        request = _read(b"POST /run HTTP/1.1\r\n\r\n")
        assert request.json() == {}


class TestEncodeResponse:
    def test_roundtrip(self):
        raw = encode_response(Response(payload={"b": 2, "a": 1}))
        head, body = raw.split(b"\r\n\r\n", 1)
        lines = head.decode().split("\r\n")
        assert lines[0] == "HTTP/1.1 200 OK"
        headers = dict(line.split(": ", 1) for line in lines[1:])
        assert headers["content-type"] == "application/json"
        assert int(headers["content-length"]) == len(body)
        assert headers["connection"] == "keep-alive"
        assert json.loads(body) == {"a": 1, "b": 2}
        # sorted keys: responses are byte-deterministic
        assert body == b'{"a": 1, "b": 2}\n'

    def test_connection_close_and_custom_headers(self):
        raw = encode_response(
            Response(status=429, payload={"error": "slow down"},
                     headers={"Retry-After": "2"}),
            keep_alive=False)
        head = raw.split(b"\r\n\r\n", 1)[0].decode()
        assert head.startswith("HTTP/1.1 429 Too Many Requests")
        assert "connection: close" in head
        assert "retry-after: 2" in head

    def test_error_response_carries_status_and_headers(self):
        response = error_response(
            HttpError(404, "no such endpoint", {"x-extra": "1"}))
        assert response.status == 404
        assert response.payload["error"] == "no such endpoint"
        assert response.headers == {"x-extra": "1"}
