"""White-box checks of the SWIFT/SWIFT-R rewriter output."""
import pytest

from repro.ir import Opcode, format_module, parse_module, verify_module
from repro.transforms import apply_swift, apply_swift_r, protect_function

from ..conftest import build_dot_module


class TestShadowStreams:
    def test_shadow_registers_named(self, dot_module):
        apply_swift_r(dot_module)
        func = dot_module.get_function("main")
        shadows = {r.name for i in func.instructions() if i.dest for r in [i.dest]
                   if ".sw" in i.dest.name}
        assert any(name.endswith(".sw1") for name in shadows)
        assert any(name.endswith(".sw2") for name in shadows)

    def test_swift_has_single_shadow(self, dot_module):
        apply_swift(dot_module)
        func = dot_module.get_function("main")
        names = {i.dest.name for i in func.instructions() if i.dest}
        assert any(n.endswith(".sw1") for n in names)
        assert not any(n.endswith(".sw2") for n in names)

    def test_fix_blocks_emitted_for_swift_r(self, dot_module):
        apply_swift_r(dot_module)
        func = dot_module.get_function("main")
        fixes = [l for l in func.blocks if ".fix" in l]
        assert fixes
        # each fix has the master/shadow arms
        assert any(l.endswith(".m") for l in fixes)
        assert any(l.endswith(".s") for l in fixes)

    def test_swift_shares_one_detect_block(self, dot_module):
        apply_swift(dot_module)
        func = dot_module.get_function("main")
        assert "swift.detect" in func.blocks
        detects = [l for l in func.blocks if l.startswith("swift.detect")]
        assert len(detects) == 1

    def test_replication_roughly_triples_pure_ops(self):
        module = build_dot_module()
        before_fmul = sum(
            1 for i in module.get_function("main").instructions()
            if i.op is Opcode.FMUL
        )
        apply_swift_r(module)
        after_fmul = sum(
            1 for i in module.get_function("main").instructions()
            if i.op is Opcode.FMUL
        )
        assert after_fmul == 3 * before_fmul

    def test_protected_output_still_prints_and_parses(self, dot_module):
        apply_swift_r(dot_module)
        text = format_module(dot_module)
        reparsed = parse_module(text)
        verify_module(reparsed)

    def test_param_shadow_copies_at_entry(self, dot_module):
        apply_swift_r(dot_module)
        func = dot_module.get_function("main")
        entry = func.blocks[func.block_order()[0]]
        head = entry.instrs[:4]
        shadow_movs = [
            i for i in head
            if i.op is Opcode.MOV and i.dest and ".sw" in i.dest.name
        ]
        assert shadow_movs  # params used downstream get copies up front

    def test_report_lazy_materializations_zero_on_clean_input(self, dot_module):
        (report,) = apply_swift_r(dot_module)
        assert report.lazy_materializations == 0
