"""Sync-point placement: where SWIFT-R validates its shadow copies."""
import pytest

from repro.transforms import ALL_SYNC_POINTS, apply_swift_r, protect_function
from repro.ir import verify_module

from ..conftest import build_dot_module, run_main


class TestSyncPointConfiguration:
    def test_default_is_everything(self):
        assert ALL_SYNC_POINTS == {"load", "store", "branch", "call", "ret"}

    def test_unknown_category_rejected(self):
        module = build_dot_module()
        with pytest.raises(ValueError, match="unknown sync-point"):
            protect_function(module.get_function("main"), 2, sync_points={"teapot"})

    @pytest.mark.parametrize("sync", [
        {"store"},
        {"store", "branch"},
        {"load", "store", "branch", "call", "ret"},
    ])
    def test_semantics_preserved_at_any_placement(self, sync):
        _, mem_ref = run_main(build_dot_module(), [6, 8])
        module = build_dot_module()
        apply_swift_r(module, sync_points=sync)
        verify_module(module)
        _, mem = run_main(module, [6, 8])
        assert mem.read_global("out", 6) == mem_ref.read_global("out", 6)

    def test_fewer_sync_points_fewer_checks(self):
        m_all = build_dot_module()
        reports_all = apply_swift_r(m_all)
        m_min = build_dot_module()
        reports_min = apply_swift_r(m_min, sync_points={"store"})
        assert reports_min[0].sync_checks < reports_all[0].sync_checks

    def test_fewer_sync_points_fewer_instructions(self):
        m_all = build_dot_module()
        apply_swift_r(m_all)
        all_steps, _ = run_main(m_all, [6, 8])
        m_min = build_dot_module()
        apply_swift_r(m_min, sync_points={"store"})
        min_steps, _ = run_main(m_min, [6, 8])
        assert min_steps.steps < all_steps.steps

    def test_store_only_weaker_against_address_faults(self):
        """Store-only checking recovers fewer faults than full placement:
        unvalidated branch conditions become detection gaps."""
        from repro.runtime import FaultPlan, Interpreter, TrapError
        from ..conftest import seed_memory

        def run_faulted(sync, step, pick):
            module = build_dot_module()
            apply_swift_r(module, sync_points=sync)
            mem = seed_memory(module)
            interp = Interpreter(
                module,
                memory=mem,
                fault_plan=FaultPlan(step=step, kind="value", bit=58, pick=pick),
                max_steps=5_000_000,
            )
            try:
                interp.run("main", [6, 8])
            except TrapError:
                return None
            return mem.read_global("out", 6)

        _, golden_mem = run_main(build_dot_module(), [6, 8])
        golden = golden_mem.read_global("out", 6)

        def bad_count(sync):
            bad = 0
            for k in range(30):
                out = run_faulted(sync, 80 + 53 * k, (k * 0.17) % 1.0)
                if out != golden:
                    bad += 1
            return bad

        assert bad_count(frozenset({"store"})) >= bad_count(ALL_SYNC_POINTS)
