import pytest

from repro.ir import Opcode, verify_module
from repro.runtime import (
    FaultDetectedError,
    FaultPlan,
    Interpreter,
    TrapError,
)
from repro.transforms import (
    DETECT_INTRINSIC,
    apply_swift,
    apply_swift_r,
    protect_function,
)

from ..conftest import (
    build_call_module,
    build_dot_module,
    build_rmw_module,
    run_main,
    seed_memory,
)


def detect_handler(interp, args):
    raise FaultDetectedError("mismatch")


BUILDERS = [build_dot_module, build_call_module, build_rmw_module]


class TestSemanticPreservation:
    @pytest.mark.parametrize("builder", BUILDERS)
    def test_swift_r_preserves_output(self, builder):
        args = [6, 8] if builder is not build_call_module else [6]
        _, mem_plain = run_main(builder(), args)
        protected = builder()
        apply_swift_r(protected)
        verify_module(protected)
        _, mem_prot = run_main(protected, args)
        assert mem_plain.read_global("out", 6) == mem_prot.read_global("out", 6)

    @pytest.mark.parametrize("builder", BUILDERS)
    def test_swift_preserves_output(self, builder):
        args = [6, 8] if builder is not build_call_module else [6]
        _, mem_plain = run_main(builder(), args)
        protected = builder()
        apply_swift(protected)
        verify_module(protected)
        _, mem_prot = run_main(
            protected, args, intrinsics={DETECT_INTRINSIC: detect_handler}
        )
        assert mem_plain.read_global("out", 6) == mem_prot.read_global("out", 6)


class TestOverheads:
    def test_swift_r_instruction_overhead_in_paper_range(self, dot_module):
        baseline, _ = run_main(build_dot_module(), [8, 8])
        apply_swift_r(dot_module)
        protected, _ = run_main(dot_module, [8, 8])
        ratio = protected.steps / baseline.steps
        assert 2.3 <= ratio <= 4.0  # paper: ~3.48x on average

    def test_swift_cheaper_than_swift_r(self):
        m1 = build_dot_module()
        apply_swift(m1)
        r1, _ = run_main(m1, [8, 8], intrinsics={DETECT_INTRINSIC: detect_handler})
        m2 = build_dot_module()
        apply_swift_r(m2)
        r2, _ = run_main(m2, [8, 8])
        assert r1.steps < r2.steps

    def test_report_counts(self, dot_module):
        reports = apply_swift_r(dot_module)
        assert len(reports) == 1
        rep = reports[0]
        assert rep.replicated > 0
        assert rep.sync_checks > 0


class TestFaultBehavior:
    def _swift_r_run_with_fault(self, step, bit, pick):
        module = build_dot_module()
        apply_swift_r(module)
        mem = seed_memory(module)
        interp = Interpreter(
            module,
            memory=mem,
            fault_plan=FaultPlan(step=step, kind="value", bit=bit, pick=pick),
            max_steps=5_000_000,
        )
        try:
            interp.run("main", [6, 8])
        except TrapError:
            return None
        return mem.read_global("out", 6)

    def test_swift_r_recovers_most_value_faults(self):
        _, mem = run_main(build_dot_module(), [6, 8])
        golden = mem.read_global("out", 6)
        recovered = 0
        trials = 0
        for k in range(40):
            out = self._swift_r_run_with_fault(
                step=100 + k * 45, bit=50, pick=(k * 0.13) % 1.0
            )
            trials += 1
            if out == golden:
                recovered += 1
        # TMR voting should recover the overwhelming majority
        assert recovered >= trials * 0.8

    def test_unprotected_is_more_fragile(self):
        _, mem = run_main(build_dot_module(), [6, 8])
        golden = mem.read_global("out", 6)

        def unprotected_fault(step, pick):
            module = build_dot_module()
            mem2 = seed_memory(module)
            interp = Interpreter(
                module,
                memory=mem2,
                fault_plan=FaultPlan(step=step, kind="value", bit=50, pick=pick),
                max_steps=5_000_000,
            )
            try:
                interp.run("main", [6, 8])
            except TrapError:
                return None
            return mem2.read_global("out", 6)

        unsafe_bad = sum(
            1
            for k in range(40)
            if unprotected_fault(20 + k * 15, (k * 0.13) % 1.0) != golden
        )
        swiftr_bad = sum(
            1
            for k in range(40)
            if self._swift_r_run_with_fault(100 + k * 45, 50, (k * 0.13) % 1.0) != golden
        )
        assert swiftr_bad < unsafe_bad

    def test_swift_detects_injected_mismatch(self):
        """Scan injection points until SWIFT's comparison fires."""
        detections = 0
        for k in range(60):
            module = build_dot_module()
            apply_swift(module)
            mem = seed_memory(module)
            interp = Interpreter(
                module,
                memory=mem,
                fault_plan=FaultPlan(step=50 + k * 60, kind="value", bit=50,
                                     pick=(k * 0.17) % 1.0),
                max_steps=5_000_000,
            )
            interp.register_intrinsic(DETECT_INTRINSIC, detect_handler)
            try:
                interp.run("main", [6, 8])
            except FaultDetectedError:
                detections += 1
            except TrapError:
                pass
        assert detections > 0


class TestMechanics:
    def test_idempotency_guard(self, dot_module):
        apply_swift_r(dot_module)
        assert apply_swift_r(dot_module) == []  # already protected, skipped
        with pytest.raises(ValueError, match="already protected"):
            protect_function(dot_module.get_function("main"), 2)

    def test_exclude_funcs(self, call_module):
        apply_swift_r(call_module, exclude_funcs=["g"])
        g = call_module.get_function("g")
        assert not g.attrs.get("protected")
        assert call_module.get_function("main").attrs.get("protected")

    def test_exclude_blocks_get_boundary_copies(self, dot_module):
        func = dot_module.get_function("main")
        entry = func.block_order()[0]
        new_func, report = protect_function(func, 2, exclude_labels=[entry])
        dot_module.functions["main"] = new_func
        verify_module(dot_module)
        assert report.boundary_copies > 0
        _, mem = run_main(dot_module, [6, 8])
        _, mem_ref = run_main(build_dot_module(), [6, 8])
        assert mem.read_global("out", 6) == mem_ref.read_global("out", 6)

    def test_provenance_recorded(self, dot_module):
        apply_swift_r(dot_module)
        func = dot_module.get_function("main")
        provenance = func.attrs["provenance"]
        split = [l for l in func.blocks if ".sr" in l]
        assert split
        for label in split:
            assert provenance[label] in build_dot_module().get_function("main").blocks

    def test_loads_not_duplicated(self, dot_module):
        baseline = sum(
            1 for i in build_dot_module().get_function("main").instructions()
            if i.op is Opcode.LOAD
        )
        apply_swift_r(dot_module)
        protected = sum(
            1 for i in dot_module.get_function("main").instructions()
            if i.op is Opcode.LOAD
        )
        assert protected == baseline  # ECC memory: loads execute once

    def test_stores_not_duplicated(self, dot_module):
        baseline = sum(
            1 for i in build_dot_module().get_function("main").instructions()
            if i.op is Opcode.STORE
        )
        apply_swift_r(dot_module)
        protected = sum(
            1 for i in dot_module.get_function("main").instructions()
            if i.op is Opcode.STORE
        )
        assert protected == baseline
