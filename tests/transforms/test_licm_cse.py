import pytest

from repro.ir import Opcode, parse_module, verify_module
from repro.runtime import Interpreter
from repro.transforms import (
    run_cse,
    run_cse_module,
    run_dce_module,
    run_licm,
    run_licm_module,
)

from ..conftest import build_dot_module, build_rmw_module, run_main


class TestLICM:
    def test_hoists_invariant_multiply(self):
        src = (
            "func @main(%n: i64, %a: i64, %b: i64) -> f64 {\n"
            "entry:\n"
            "  %i = mov 0:i64\n"
            "  %acc = mov 0:i64\n"
            "  br head\n"
            "head:\n"
            "  %c = icmp lt %i, %n\n"
            "  cbr %c, body, exit\n"
            "body:\n"
            "  %inv = mul %a, %b\n"
            "  %acc = add %acc, %inv\n"
            "  %i = add %i, 1:i64\n"
            "  br head\n"
            "exit:\n"
            "  %f = sitofp %acc\n"
            "  ret %f\n"
            "}\n"
        )
        module = parse_module(src)
        func = module.get_function("main")
        before = Interpreter(module).run("main", [10, 3, 4])
        hoisted = run_licm(func)
        verify_module(module)
        assert hoisted == 1
        after = Interpreter(parse_module_copy(module)).run("main", [10, 3, 4])
        assert after.value == before.value == 120.0
        assert after.steps < before.steps
        # the multiply now lives in the entry block
        entry_ops = [i.op for i in func.blocks["entry"].instrs]
        assert Opcode.MUL in entry_ops

    def test_does_not_hoist_loads(self):
        src = (
            "func @main(%n: i64, %p: ptr) -> f64 {\n"
            "entry:\n"
            "  %i = mov 0:i64\n"
            "  %acc = mov 0.0:f64\n"
            "  br head\n"
            "head:\n"
            "  %c = icmp lt %i, %n\n"
            "  cbr %c, body, exit\n"
            "body:\n"
            "  %v = load %p : f64\n"
            "  %acc = fadd %acc, %v\n"
            "  %vv = fmul %acc, 0.5:f64\n"
            "  store %vv, %p\n"
            "  %i = add %i, 1:i64\n"
            "  br head\n"
            "exit:\n"
            "  ret %acc\n"
            "}\n"
        )
        module = parse_module(src)
        func = module.get_function("main")
        run_licm(func)
        body_ops = [i.op for i in func.blocks["body"].instrs]
        assert Opcode.LOAD in body_ops  # memory ops stay put

    def test_does_not_hoist_conditional_code(self):
        src = (
            "func @main(%n: i64, %a: i64) -> f64 {\n"
            "entry:\n"
            "  %i = mov 0:i64\n"
            "  br head\n"
            "head:\n"
            "  %c = icmp lt %i, %n\n"
            "  cbr %c, body, exit\n"
            "body:\n"
            "  %odd = and %i, 1:i64\n"
            "  cbr %odd, take, skip\n"
            "take:\n"
            "  %inv = mul %a, %a\n"
            "  br skip\n"
            "skip:\n"
            "  %i = add %i, 1:i64\n"
            "  br head\n"
            "exit:\n"
            "  ret 0.0:f64\n"
            "}\n"
        )
        module = parse_module(src)
        func = module.get_function("main")
        run_licm(func)
        take_ops = [i.op for i in func.blocks["take"].instrs]
        assert Opcode.MUL in take_ops  # it does not dominate the latch

    def test_preserves_workload_semantics(self):
        for builder, args in ((build_dot_module, [6, 8]), (build_rmw_module, [6, 8])):
            reference = builder()
            _, mem_ref = run_main(reference, args)
            optimized = builder()
            run_licm_module(optimized)
            verify_module(optimized)
            _, mem_opt = run_main(optimized, args)
            assert mem_ref.read_global("out", 6) == mem_opt.read_global("out", 6)


class TestCSE:
    def test_eliminates_duplicate_expression(self):
        src = (
            "func @main(%a: i64, %b: i64) -> f64 {\n"
            "entry:\n"
            "  %x = add %a, %b\n"
            "  %y = add %a, %b\n"
            "  %z = add %x, %y\n"
            "  %f = sitofp %z\n"
            "  ret %f\n"
            "}\n"
        )
        module = parse_module(src)
        replaced = run_cse(module.get_function("main"))
        assert replaced == 1
        verify_module(module)
        assert Interpreter(module).run("main", [2, 3]).value == 10.0

    def test_commutativity(self):
        src = (
            "func @main(%a: i64, %b: i64) -> f64 {\n"
            "entry:\n"
            "  %x = add %a, %b\n"
            "  %y = add %b, %a\n"
            "  %z = add %x, %y\n"
            "  %f = sitofp %z\n"
            "  ret %f\n"
            "}\n"
        )
        module = parse_module(src)
        assert run_cse(module.get_function("main")) == 1
        assert Interpreter(module).run("main", [2, 3]).value == 10.0

    def test_noncommutative_not_merged(self):
        src = (
            "func @main(%a: i64, %b: i64) -> f64 {\n"
            "entry:\n"
            "  %x = sub %a, %b\n"
            "  %y = sub %b, %a\n"
            "  %z = add %x, %y\n"
            "  %f = sitofp %z\n"
            "  ret %f\n"
            "}\n"
        )
        module = parse_module(src)
        assert run_cse(module.get_function("main")) == 0

    def test_result_redefinition_invalidates(self):
        """The classic stale-table trap: %x = add; %x = mov w; add again."""
        src = (
            "func @main(%a: i64, %b: i64, %w: i64) -> f64 {\n"
            "entry:\n"
            "  %x = add %a, %b\n"
            "  %x = mov %w\n"
            "  %y = add %a, %b\n"
            "  %z = add %x, %y\n"
            "  %f = sitofp %z\n"
            "  ret %f\n"
            "}\n"
        )
        module = parse_module(src)
        run_cse(module.get_function("main"))
        verify_module(module)
        # %z must be w + (a+b) = 100 + 5
        assert Interpreter(module).run("main", [2, 3, 100]).value == 105.0

    def test_operand_redefinition_invalidates(self):
        src = (
            "func @main(%a: i64, %b: i64) -> f64 {\n"
            "entry:\n"
            "  %x = add %a, %b\n"
            "  %a = mov 50:i64\n"
            "  %y = add %a, %b\n"
            "  %z = add %x, %y\n"
            "  %f = sitofp %z\n"
            "  ret %f\n"
            "}\n"
        )
        module = parse_module(src)
        run_cse(module.get_function("main"))
        assert Interpreter(module).run("main", [2, 3]).value == (2 + 3) + (50 + 3)

    def test_redundant_loads_merged_until_store(self):
        src = (
            "func @main(%p: ptr) -> f64 {\n"
            "entry:\n"
            "  %v1 = load %p : f64\n"
            "  %v2 = load %p : f64\n"
            "  store 9.0:f64, %p\n"
            "  %v3 = load %p : f64\n"
            "  %s = fadd %v1, %v2\n"
            "  %t = fadd %s, %v3\n"
            "  ret %t\n"
            "}\n"
        )
        module = parse_module(src)
        replaced = run_cse(module.get_function("main"))
        assert replaced == 1  # v2 merged, v3 must re-load after the store
        interp = Interpreter(module)
        interp.memory.cells[64] = 2.0
        assert interp.run("main", [64]).value == 2.0 + 2.0 + 9.0

    def test_preserves_workload_semantics(self):
        reference = build_dot_module()
        _, mem_ref = run_main(reference, [6, 8])
        optimized = build_dot_module()
        run_cse_module(optimized)
        run_dce_module(optimized)
        verify_module(optimized)
        _, mem_opt = run_main(optimized, [6, 8])
        assert mem_ref.read_global("out", 6) == mem_opt.read_global("out", 6)


def parse_module_copy(module):
    from repro.ir import format_module, parse_module as parse

    return parse(format_module(module))
