import pytest

from repro.ir import (
    F64,
    Function,
    I64,
    IRBuilder,
    Module,
    Opcode,
    Reg,
    parse_module,
    verify_module,
)
from repro.runtime import Interpreter
from repro.transforms import (
    PassManager,
    clone_function,
    duplicate_into_module,
    rename_all_registers,
    run_constfold,
    run_dce,
    run_dce_module,
    run_simplify_module,
)

from ..conftest import build_dot_module, run_main, seed_memory


class TestClone:
    def test_clone_is_deep(self, dot_module):
        f = dot_module.get_function("main")
        clone = clone_function(f, "copy")
        clone.blocks[clone.block_order()[0]].instrs[0].dest = Reg("hijack", I64)
        assert f.blocks[f.block_order()[0]].instrs[0].dest.name != "hijack"

    def test_clone_preserves_behavior(self, dot_module):
        clone = clone_function(dot_module.get_function("main"), "copy")
        dot_module.add_function(clone)
        verify_module(dot_module)
        mem = seed_memory(dot_module)
        r1 = Interpreter(dot_module, memory=mem).run("main", [4, 8])
        mem2 = seed_memory(dot_module)
        r2 = Interpreter(dot_module, memory=mem2).run("copy", [4, 8])
        assert mem.read_global("out", 4) == mem2.read_global("out", 4)

    def test_rename_all_registers(self, dot_module):
        clone = clone_function(dot_module.get_function("main"), "copy")
        mapping = rename_all_registers(clone, ".d")
        assert all(r.name.endswith(".d") for r in clone.params)
        for instr in clone.instructions():
            for reg in instr.uses():
                assert reg.name.endswith(".d")
        assert mapping["n"].name == "n.d"

    def test_duplicate_into_module(self, dot_module):
        dup = duplicate_into_module(dot_module, "main", "main.dup")
        verify_module(dot_module)
        assert dup.name == "main.dup"
        mem = seed_memory(dot_module)
        Interpreter(dot_module, memory=mem).run("main.dup", [4, 8])


class TestDCE:
    def test_removes_dead_chain(self):
        src = (
            "func @main() -> f64 {\n"
            "entry:\n"
            "  %a = fadd 1.0:f64, 2.0:f64\n"
            "  %dead1 = fmul %a, 3.0:f64\n"
            "  %dead2 = fmul %dead1, 3.0:f64\n"
            "  ret %a\n"
            "}\n"
        )
        m = parse_module(src)
        removed = run_dce(m.get_function("main"))
        assert removed == 2
        assert Interpreter(m).run("main", []).value == 3.0

    def test_keeps_side_effects(self):
        src = (
            "func @main() -> f64 {\n"
            "entry:\n"
            "  %p = alloc 4:i64\n"
            "  store 1.0:f64, %p\n"
            "  ret 0.0:f64\n"
            "}\n"
        )
        m = parse_module(src)
        assert run_dce(m.get_function("main")) == 0

    def test_preserves_semantics_on_real_program(self, dot_module):
        before, mem_before = run_main(build_dot_module(), [4, 8])
        run_dce_module(dot_module)
        verify_module(dot_module)
        after, mem_after = run_main(dot_module, [4, 8])
        assert mem_before.read_global("out", 4) == mem_after.read_global("out", 4)
        assert after.steps <= before.steps


class TestConstFold:
    def test_folds_constants(self):
        src = (
            "func @main() -> f64 {\n"
            "entry:\n"
            "  %a = mov 2.0:f64\n"
            "  %b = fmul %a, 3.0:f64\n"
            "  %c = fadd %b, 1.0:f64\n"
            "  ret %c\n"
            "}\n"
        )
        m = parse_module(src)
        folds = run_constfold(m.get_function("main"))
        assert folds > 0
        assert Interpreter(m).run("main", []).value == 7.0
        ret = m.get_function("main").entry.instrs[-1]
        # the returned value should now be a constant-mov'd register
        assert Interpreter(m).run("main", []).steps == 4

    def test_identity_simplification(self):
        src = (
            "func @main(%x: i64) -> f64 {\n"
            "entry:\n"
            "  %a = add %x, 0:i64\n"
            "  %b = mul %a, 1:i64\n"
            "  %f = sitofp %b\n"
            "  ret %f\n"
            "}\n"
        )
        m = parse_module(src)
        run_constfold(m.get_function("main"))
        verify_module(m)
        assert Interpreter(m).run("main", [9]).value == 9.0

    def test_no_fold_across_redefinition(self):
        src = (
            "func @main(%x: i64) -> f64 {\n"
            "entry:\n"
            "  %a = mov 2:i64\n"
            "  %a = mov %x\n"
            "  %f = sitofp %a\n"
            "  ret %f\n"
            "}\n"
        )
        m = parse_module(src)
        run_constfold(m.get_function("main"))
        assert Interpreter(m).run("main", [5]).value == 5.0

    def test_cmp_folding(self):
        src = (
            "func @main() -> f64 {\n"
            "entry:\n"
            "  %c = icmp lt 1:i64, 2:i64\n"
            "  %f = sitofp %c\n"
            "  ret %f\n"
            "}\n"
        )
        m = parse_module(src)
        assert run_constfold(m.get_function("main")) > 0
        assert Interpreter(m).run("main", []).value == 1.0

    def test_module_helper_and_semantics(self, dot_module):
        _, mem_before = run_main(build_dot_module(), [4, 8])
        run_simplify_module(dot_module)
        run_dce_module(dot_module)
        verify_module(dot_module)
        _, mem_after = run_main(dot_module, [4, 8])
        assert mem_before.read_global("out", 4) == mem_after.read_global("out", 4)


class TestPassManager:
    def test_runs_in_order_with_verification(self, dot_module):
        pm = PassManager(verify=True)
        pm.add("fold", run_simplify_module).add("dce", run_dce_module)
        pm.run(dot_module)
        assert [r.name for r in pm.history] == ["fold", "dce"]

    def test_verification_failure_propagates(self):
        from repro.ir import VerificationError

        m = Module("m")
        f = Function("broken", [], F64)
        m.add_function(f)

        pm = PassManager(verify=True)
        pm.add("noop", lambda module: None)
        with pytest.raises(VerificationError):
            pm.run(m)
