"""Smoke tests: the shipped examples must actually run."""
import importlib.util
import pathlib
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def load_example(name: str):
    path = EXAMPLES / name
    spec = importlib.util.spec_from_file_location(f"example_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestExamples:
    def test_quickstart(self, capsys):
        load_example("quickstart.py").main()
        out = capsys.readouterr().out
        assert "Detected prediction targets" in out
        assert "RSkip skipped" in out

    def test_textual_ir(self, capsys):
        load_example("textual_ir.py").main()
        out = capsys.readouterr().out
        assert "output identical:     True" in out
        assert "skip rate" in out

    def test_custom_workload(self, capsys):
        load_example("custom_workload.py").main()
        out = capsys.readouterr().out
        assert "Detected:" in out
        assert "protection rate" in out

    @pytest.mark.parametrize("name", [
        "quickstart.py",
        "textual_ir.py",
        "custom_workload.py",
        "protect_blackscholes.py",
        "fault_injection_demo.py",
        "train_and_deploy.py",
    ])
    def test_examples_importable(self, name):
        module = load_example(name)
        assert hasattr(module, "main")
