from repro.eval import render_scaling, scaling_study
from repro.workloads import get_workload


class TestScalingStudy:
    def test_rows_shape(self):
        rows = scaling_study(get_workload("sgemm"), scales=(0.3, 0.6))
        assert [r.scale for r in rows] == [0.3, 0.6]
        assert all(r.elements > 0 for r in rows)
        assert all(0.0 <= r.skip_rate <= 1.0 for r in rows)
        assert all(r.norm_time is None for r in rows)  # timing off

    def test_larger_problems_have_more_elements(self):
        rows = scaling_study(get_workload("lud"), scales=(0.4, 1.0))
        assert rows[1].elements > rows[0].elements

    def test_timing_mode(self):
        rows = scaling_study(get_workload("sgemm"), scales=(0.3,), timing=True)
        assert rows[0].norm_time is not None and rows[0].norm_time > 1.0

    def test_render(self):
        rows = scaling_study(get_workload("sgemm"), scales=(0.3,))
        text = render_scaling("sgemm", rows)
        assert "sgemm scaling:" in text
        assert "skip rate" in text
