import pytest

from repro.eval import PAPER_SCHEMES, fault_region, prepare, rskip_label
from repro.ir import verify_module
from repro.runtime import Interpreter
from repro.workloads import get_workload


class TestPrepare:
    @pytest.mark.parametrize("scheme", ["UNSAFE", "SWIFT", "SWIFT-R", "AR20", "AR100"])
    def test_prepare_verifies_and_runs(self, scheme):
        w = get_workload("sgemm")
        prepared = prepare(w, scheme)
        verify_module(prepared.module)
        inp = w.test_inputs(1, scale=0.4)[0]
        mem = w.fresh_memory(prepared.module, inp)
        interp = Interpreter(prepared.module, memory=mem)
        interp.register_intrinsics(prepared.intrinsics)
        interp.run(prepared.main, inp.args)

    def test_scheme_labels(self):
        assert rskip_label(0.2) == "AR20"
        assert rskip_label(1.0) == "AR100"
        assert PAPER_SCHEMES[0] == "UNSAFE"

    def test_unknown_scheme(self):
        with pytest.raises(ValueError):
            prepare(get_workload("sgemm"), "BOGUS")

    def test_rskip_prepared_carries_application(self):
        prepared = prepare(get_workload("sgemm"), "AR50")
        assert prepared.application is not None
        assert prepared.runtime is not None
        assert prepared.scheme == "AR50"

    def test_unsafe_has_no_intrinsics(self):
        prepared = prepare(get_workload("sgemm"), "UNSAFE")
        assert prepared.intrinsics == {}


class TestFaultRegion:
    def test_unsafe_region_is_loop_blocks(self):
        w = get_workload("sgemm")
        prepared = prepare(w, "UNSAFE")
        region = fault_region(prepared)
        assert region
        labels = {l for (f, l) in region.blocks}
        assert any(l.startswith("col") for l in labels)
        # the outer row loop blocks also belong to the detected loop? no:
        # only the detected (col) loop and its children
        assert all(not l.startswith("row.head") for l in labels)

    def test_swift_r_region_expands_through_provenance(self):
        w = get_workload("sgemm")
        unsafe_region = fault_region(prepare(w, "UNSAFE"))
        swiftr_region = fault_region(prepare(w, "SWIFT-R"))
        assert len(swiftr_region.blocks) > len(unsafe_region.blocks)

    def test_rskip_region_includes_body_functions(self):
        prepared = prepare(get_workload("sgemm"), "AR20")
        region = fault_region(prepared)
        layout = prepared.application.layouts[0]
        assert layout.body in region.funcs
        assert layout.dup in region.funcs
        assert layout.cp in region.funcs

    def test_blackscholes_region_includes_callee(self):
        prepared = prepare(get_workload("blackscholes"), "UNSAFE")
        region = fault_region(prepared)
        assert "BlkSchlsEqEuroNoDiv" in region.funcs


class TestRegistrySourcing:
    """The eval axes are enumerated from the scheme registry, so a
    registered scheme can never silently go missing from the studies
    (regression: the axes used to be hand-maintained literals)."""

    def test_every_campaign_default_in_perf_axis(self):
        from repro.eval.perf import PERF_SCHEMES
        from repro.pipeline import default_campaign_schemes

        assert ("UNSAFE",) + PERF_SCHEMES == tuple(default_campaign_schemes())

    def test_every_protection_family_in_skipmap_axis(self):
        from repro.eval.skipmap import DEFAULT_SCHEMES
        from repro.pipeline import all_descriptors, canonical_scheme

        covered = {canonical_scheme(s) for s in DEFAULT_SCHEMES if s}
        for descriptor in all_descriptors():
            if not descriptor.passes:
                continue  # UNSAFE: the None baseline column
            family_default = canonical_scheme(descriptor.passes[-1])
            assert family_default in covered, descriptor.name

    def test_protocol_schemes_prepare_like_any_other(self):
        from repro.eval import prepare

        for scheme in ("REPLAY2", "CKPT8"):
            prepared = prepare(get_workload("conv1d"), scheme)
            verify_module(prepared.module)
            assert prepared.application is not None
