"""Trial isolation, parallel determinism and resume of the SFI engine."""
import json

import pytest

from repro.eval import (
    CampaignResult,
    Harness,
    figure9,
    prepare,
    run_campaign,
)
from repro.eval.campaign_engine import run_campaigns
from repro.runtime import Outcome
from repro.workloads import get_workload

SCALE = 0.35
TRIALS = 10


def campaign_fingerprint(c: CampaignResult):
    return (
        c.workload, c.scheme, c.trials, dict(c.tallies), c.detected,
        c.false_negatives, c.caught, dict(c.fn_by_outcome), c.region_steps,
    )


@pytest.fixture(scope="module")
def conv1d():
    return get_workload("conv1d")


@pytest.fixture(scope="module")
def conv1d_profiles(conv1d):
    return Harness(conv1d, scale=SCALE, timing=False).profiles_for(1.0)


class TestTrialIsolation:
    def test_reused_prepared_program_matches_fresh(self, conv1d, conv1d_profiles):
        """Back-to-back campaigns on one PreparedProgram tally exactly like
        campaigns on freshly built programs: no predictor state leaks."""
        prepared = prepare(conv1d, "AR100", profiles=conv1d_profiles)
        first = run_campaign(
            conv1d, "AR100", TRIALS, scale=SCALE, prepared=prepared
        )
        second = run_campaign(
            conv1d, "AR100", TRIALS, scale=SCALE, prepared=prepared
        )
        fresh = run_campaign(
            conv1d, "AR100", TRIALS, scale=SCALE, profiles=conv1d_profiles
        )
        assert campaign_fingerprint(first) == campaign_fingerprint(second)
        assert campaign_fingerprint(first) == campaign_fingerprint(fresh)

    def test_caught_comes_from_per_trial_delta(self, conv1d, conv1d_profiles):
        campaign = run_campaign(
            conv1d, "AR100", TRIALS, scale=SCALE, profiles=conv1d_profiles
        )
        assert 0 <= campaign.caught <= TRIALS


class TestParallelDeterminism:
    def test_parallel_matches_serial(self, conv1d, conv1d_profiles):
        """The tier-1 smoke path: 2 worker processes, small trial count,
        byte-identical tallies vs the serial run."""
        serial = run_campaign(
            conv1d, "AR100", TRIALS, scale=SCALE, profiles=conv1d_profiles
        )
        parallel = run_campaign(
            conv1d, "AR100", TRIALS, scale=SCALE, profiles=conv1d_profiles,
            jobs=2,
        )
        assert campaign_fingerprint(parallel) == campaign_fingerprint(serial)

    def test_chunking_does_not_change_tallies(self, conv1d):
        serial = run_campaign(conv1d, "UNSAFE", TRIALS, scale=SCALE)
        for chunk in (1, 3, 7):
            chunked = run_campaigns(
                [(conv1d, "UNSAFE", None)], trials=TRIALS, scale=SCALE,
                jobs=1, chunk=chunk,
            )[(conv1d.name, "UNSAFE")]
            assert campaign_fingerprint(chunked) == campaign_fingerprint(serial)

    def test_figure9_parallel_matches_serial(self, conv1d, conv1d_profiles):
        def profile_source(workload, ar):
            return conv1d_profiles

        kwargs = dict(
            schemes=("UNSAFE", "AR100"), trials=6, scale=SCALE,
            profile_source=profile_source,
        )
        serial = figure9([conv1d], **kwargs)
        parallel = figure9([conv1d], jobs=2, **kwargs)
        assert set(serial) == set(parallel)
        for key in serial:
            assert campaign_fingerprint(serial[key]) == campaign_fingerprint(
                parallel[key]
            )


class TestCheckpointResume:
    def test_interrupted_campaign_resumes_to_same_result(self, conv1d, tmp_path):
        path = str(tmp_path / "checkpoint.json")
        group = [(conv1d, "UNSAFE", None)]
        kwargs = dict(trials=TRIALS, scale=SCALE, jobs=1, chunk=4)
        full = run_campaigns(group, checkpoint=path, **kwargs)[
            (conv1d.name, "UNSAFE")
        ]

        # simulate an interrupt: drop the last chunk from the checkpoint
        with open(path) as handle:
            data = json.load(handle)
        assert len(data["chunks"]) == 3  # trials=10, chunk=4 -> 4+4+2
        dropped = sorted(data["chunks"])[-1]
        del data["chunks"][dropped]
        with open(path, "w") as handle:
            json.dump(data, handle)

        resumed = run_campaigns(group, checkpoint=path, resume=True, **kwargs)[
            (conv1d.name, "UNSAFE")
        ]
        assert campaign_fingerprint(resumed) == campaign_fingerprint(full)

    def test_progress_reports_completion(self, conv1d, tmp_path):
        seen = []
        run_campaigns(
            [(conv1d, "UNSAFE", None)], trials=TRIALS, scale=SCALE, jobs=1,
            chunk=5, progress=lambda done, total, elapsed: seen.append((done, total)),
        )
        assert seen[0] == (0, TRIALS)
        assert seen[-1] == (TRIALS, TRIALS)
        assert all(total == TRIALS for _, total in seen)

    def test_mismatched_checkpoint_is_rejected(self, conv1d, tmp_path):
        path = str(tmp_path / "checkpoint.json")
        group = [(conv1d, "UNSAFE", None)]
        run_campaigns(group, trials=TRIALS, scale=SCALE, checkpoint=path, chunk=5)
        with pytest.raises(ValueError):
            run_campaigns(
                group, trials=TRIALS, scale=SCALE, checkpoint=path,
                resume=True, seed=99, chunk=5,
            )


class TestResultSerialization:
    def test_round_trip(self, conv1d):
        campaign = run_campaign(conv1d, "UNSAFE", 5, scale=SCALE)
        restored = CampaignResult.from_dict(
            json.loads(json.dumps(campaign.to_dict()))
        )
        assert campaign_fingerprint(restored) == campaign_fingerprint(campaign)

    def test_merge_concatenates_chunks(self):
        a = CampaignResult("w", "s", 3)
        a.tallies[Outcome.CORRECT] += 3
        a.region_steps = 7
        b = CampaignResult("w", "s", 2)
        b.tallies[Outcome.SDC] += 2
        b.caught = 1
        b.region_steps = 7
        a.merge(b)
        assert a.trials == 5
        assert a.tallies[Outcome.CORRECT] == 3
        assert a.tallies[Outcome.SDC] == 2
        assert a.caught == 1

    def test_merge_rejects_foreign_campaign(self):
        a = CampaignResult("w", "s", 1)
        with pytest.raises(ValueError):
            a.merge(CampaignResult("w", "other", 1))


class TestCliWiring:
    def test_figure9_flags_parse(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["--jobs", "4", "figure9", "--trials", "8",
             "--checkpoint", "cp.json", "--resume"]
        )
        assert args.jobs == 4
        assert args.trials == 8
        assert args.checkpoint == "cp.json"
        assert args.resume is True


@pytest.mark.slow
def test_full_scale_campaign_smoke(conv1d, conv1d_profiles):
    """A larger campaign, excluded from the default run (-m 'not slow')."""
    campaign = run_campaign(
        conv1d, "AR100", 200, scale=SCALE, profiles=conv1d_profiles, jobs=2
    )
    assert sum(campaign.tallies.values()) == 200


class TestKindWeightKeying:
    """The checkpoint params key and the parallel engine must both carry
    the fault-kind mix (regression: kind_weights used to be dropped)."""

    def test_checkpoint_rejects_different_kind_mix(self, conv1d, tmp_path):
        from repro.runtime.faults import ADVERSARIAL_KIND_WEIGHTS

        path = str(tmp_path / "checkpoint.json")
        group = [(conv1d, "UNSAFE", None)]
        run_campaigns(group, trials=TRIALS, scale=SCALE,
                      checkpoint=path, chunk=5)
        with pytest.raises(ValueError, match="kind_weights"):
            run_campaigns(
                group, trials=TRIALS, scale=SCALE, checkpoint=path,
                resume=True, chunk=5,
                kind_weights=ADVERSARIAL_KIND_WEIGHTS,
            )

    def test_pre_kind_weight_checkpoint_is_rejected(self, conv1d, tmp_path):
        """A version-1 checkpoint (written before kind weights entered the
        params key) must be refused, not silently resumed."""
        path = str(tmp_path / "checkpoint.json")
        group = [(conv1d, "UNSAFE", None)]
        run_campaigns(group, trials=TRIALS, scale=SCALE,
                      checkpoint=path, chunk=5)
        with open(path) as handle:
            data = json.load(handle)
        data["version"] = 1
        with open(path, "w") as handle:
            json.dump(data, handle)
        with pytest.raises(ValueError, match="version"):
            run_campaigns(group, trials=TRIALS, scale=SCALE,
                          checkpoint=path, resume=True, chunk=5)

    def test_checkpoint_rejects_protocol_definition_change(
            self, conv1d, tmp_path, monkeypatch):
        """The params key carries per-scheme descriptor hashes (which
        cover the protocol), so a checkpoint written under one protocol
        definition refuses to resume under another.  Regression: the
        version-2 key ignored scheme definitions entirely, so a REPLAY/
        CKPT knob change silently mixed incompatible chunks."""
        import repro.eval.campaign_engine as engine

        path = str(tmp_path / "checkpoint.json")
        group = [(conv1d, "ckpt4", None)]
        run_campaigns(group, trials=TRIALS, scale=SCALE,
                      checkpoint=path, chunk=5)

        real_get_scheme = engine.get_scheme

        def tampered_get_scheme(scheme, config=None):
            descriptor = real_get_scheme(scheme, config)

            class _Tampered:
                def descriptor_hash(self):
                    return "protocol-definition-changed"

            return _Tampered()

        monkeypatch.setattr(engine, "get_scheme", tampered_get_scheme)
        with pytest.raises(ValueError, match="different parameters"):
            run_campaigns(group, trials=TRIALS, scale=SCALE,
                          checkpoint=path, resume=True, chunk=5)

    def test_parallel_kind_mix_matches_serial(self, conv1d):
        """--jobs N with a non-default kind mix: workers must receive the
        mix (regression: it was not in the task args) and tally
        byte-identically with the serial engine."""
        from repro.runtime.faults import ADVERSARIAL_KIND_WEIGHTS

        kwargs = dict(trials=TRIALS, scale=SCALE,
                      kind_weights=ADVERSARIAL_KIND_WEIGHTS)
        serial = run_campaign(conv1d, "UNSAFE", **kwargs)
        parallel = run_campaign(conv1d, "UNSAFE", jobs=2, **kwargs)
        assert campaign_fingerprint(parallel) == campaign_fingerprint(serial)
        assert {k: dict(v) for k, v in parallel.kind_tallies.items()} == \
               {k: dict(v) for k, v in serial.kind_tallies.items()}
        # the default mix never draws skip faults: seeing them proves the
        # adversarial mix actually reached the workers
        assert set(serial.kind_tallies) - {"value", "branch", "addr"}
        assert set(parallel.kind_tallies) == set(serial.kind_tallies)
