"""Whole-pipeline integration: every workload, every scheme, bitwise-equal
outputs and sane overhead ordering."""
import pytest

from repro.eval import Harness
from repro.workloads import ALL_WORKLOADS

SCALE = 0.35


@pytest.mark.parametrize("workload", ALL_WORKLOADS, ids=lambda w: w.name)
def test_all_schemes_preserve_output(workload):
    harness = Harness(workload, scale=SCALE, timing=False, verify=True)
    inp = workload.test_inputs(1, scale=SCALE)[0]
    records = harness.run_all(["SWIFT", "SWIFT-R", "AR20", "AR100"], inp)
    for scheme, record in records.items():
        assert record.correct, f"{workload.name}/{scheme} changed the output"


@pytest.mark.parametrize("workload", ALL_WORKLOADS, ids=lambda w: w.name)
def test_rskip_beats_swift_r_instructions_at_ar100(workload):
    """Figure 7c's per-benchmark claim: prediction-based protection
    executes fewer dynamic instructions than triplication.

    lud needs a realistic problem size: its per-execution loops are short
    (the paper runs 1024x1024 matrices), and with ~8-element loops the
    endpoint re-computations dominate.
    """
    scale = 0.9 if workload.name == "lud" else SCALE
    harness = Harness(workload, scale=scale, timing=False)
    inp = workload.test_inputs(1, scale=scale)[0]
    records = harness.run_all(["SWIFT-R", "AR100"], inp)
    assert records["AR100"].steps < records["SWIFT-R"].steps


def test_every_workload_reports_skip_activity():
    for workload in ALL_WORKLOADS:
        harness = Harness(workload, scale=SCALE, timing=False)
        inp = workload.test_inputs(1, scale=SCALE)[0]
        record = harness.run_scheme("AR100", inp)
        assert record.stats is not None
        assert record.stats.elements > 0, workload.name
