from repro.eval import ar_sweep, render_sweep
from repro.workloads import get_workload


class TestArSweep:
    def test_skip_rate_nondecreasing_with_ar(self):
        points = ar_sweep(get_workload("backprop"), ars=(0.1, 0.5, 1.5), scale=0.4)
        skips = [p.skip_rate for p in points]
        assert skips == sorted(skips) or max(
            skips[i] - skips[i + 1] for i in range(len(skips) - 1)
        ) < 0.08  # small non-monotonic wobble from per-AR retraining is ok

    def test_overhead_decreases_as_skip_rises(self):
        points = ar_sweep(get_workload("backprop"), ars=(0.05, 1.5), scale=0.4)
        assert points[-1].norm_instructions <= points[0].norm_instructions

    def test_labels(self):
        points = ar_sweep(get_workload("sgemm"), ars=(0.2,), scale=0.3)
        assert points[0].label == "AR20"
        assert points[0].protection_rate is None  # trials=0

    def test_with_sfi_trials(self):
        points = ar_sweep(
            get_workload("sgemm"), ars=(0.2,), scale=0.3, trials=10, sfi_scale=0.3
        )
        assert points[0].protection_rate is not None
        assert 0.0 <= points[0].protection_rate <= 1.0
        assert "protection" in render_sweep("sgemm", points)

    def test_render_without_sfi(self):
        points = ar_sweep(get_workload("sgemm"), ars=(0.2,), scale=0.3)
        text = render_sweep("sgemm", points)
        assert "protection" not in text
        assert "AR20" in text
