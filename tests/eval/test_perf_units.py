"""Unit-level checks of the Figure 7/8 drivers and the RunRecord math."""
import pytest

from repro.eval.harness import RunRecord
from repro.eval.perf import Figure7Result, SchemeAverages, _mean


def record(scheme, steps=100, cycles=50, ipc=2.0, skip=None):
    return RunRecord(
        workload="w", scheme=scheme, steps=steps, cycles=cycles, ipc=ipc,
        output=[], skip_rate=skip,
    )


class TestRunRecord:
    def test_normalized(self):
        base = record("UNSAFE")
        prot = record("SWIFT-R", steps=300, cycles=120, ipc=2.8)
        norm = prot.normalized(base)
        assert norm["instructions"] == 3.0
        assert norm["time"] == pytest.approx(2.4)
        assert norm["ipc"] == pytest.approx(1.4)

    def test_zero_baseline_guarded(self):
        base = record("UNSAFE", steps=0, cycles=0, ipc=0.0)
        prot = record("X", steps=10, cycles=10, ipc=1.0)
        norm = prot.normalized(base)
        assert norm == {"time": 0.0, "instructions": 0.0, "ipc": 0.0}


class TestFigure7Result:
    def make(self):
        result = Figure7Result(schemes=("SWIFT-R", "AR100"))
        result.rows = {
            "a": {
                "SWIFT-R": {"time": 2.0, "instructions": 3.0, "ipc": 1.4, "skip": None, "correct": 1.0},
                "AR100": {"time": 1.4, "instructions": 1.5, "ipc": 1.0, "skip": 0.8, "correct": 1.0},
            },
            "b": {
                "SWIFT-R": {"time": 2.4, "instructions": 3.2, "ipc": 1.3, "skip": None, "correct": 1.0},
                "AR100": {"time": 1.2, "instructions": 1.4, "ipc": 1.1, "skip": 0.9, "correct": 1.0},
            },
        }
        return result

    def test_averages(self):
        averages = {a.scheme: a for a in self.make().averages()}
        assert averages["SWIFT-R"].norm_time == pytest.approx(2.2)
        assert averages["SWIFT-R"].skip_rate is None
        assert averages["AR100"].skip_rate == pytest.approx(0.85)

    def test_missing_scheme_rows_skipped(self):
        result = self.make()
        del result.rows["b"]["AR100"]
        averages = {a.scheme: a for a in result.averages()}
        assert averages["AR100"].norm_time == pytest.approx(1.4)

    def test_empty_result(self):
        assert Figure7Result(schemes=("X",)).averages() == []


class TestMean:
    def test_mean(self):
        assert _mean([1.0, 2.0, 3.0]) == 2.0
        assert _mean([]) == 0.0
