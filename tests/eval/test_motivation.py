import math

import pytest

from repro.eval.motivation import (
    loop_instruction_share,
    topk_predictable_share,
    trend_predictable_share,
)
from repro.workloads import get_workload


class TestTrendShare:
    def test_perfect_line_fully_predictable(self):
        assert trend_predictable_share([2.0 * i for i in range(50)]) == 1.0

    def test_alternating_series_unpredictable(self):
        values = [(-1.0) ** i * 5.0 for i in range(50)]
        assert trend_predictable_share(values, threshold=0.5) < 0.1

    def test_short_sequences(self):
        assert trend_predictable_share([]) == 0.0
        assert trend_predictable_share([1.0, 2.0]) == 0.0

    def test_threshold_monotone(self):
        values = [math.sin(i / 4.0) for i in range(100)]
        loose = trend_predictable_share(values, threshold=5.0)
        tight = trend_predictable_share(values, threshold=0.05)
        assert loose >= tight


class TestTopKShare:
    def test_constant_series(self):
        assert topk_predictable_share([3.0] * 40) == 1.0

    def test_few_popular_values(self):
        values = ([1.0] * 30 + [2.0] * 30 + [float(i + 100) for i in range(20)])
        share = topk_predictable_share(values, k=2)
        assert 0.7 <= share <= 0.8

    def test_all_distinct_values_capped_by_k(self):
        values = [float(2 ** i) for i in range(40)]  # all in distinct buckets
        share = topk_predictable_share(values, k=10)
        assert share <= 0.3

    def test_tolerance_groups_near_values(self):
        values = [5.0, 5.001, 4.999, 5.002] * 10
        assert topk_predictable_share(values, k=1, tolerance=0.05) == 1.0

    def test_empty(self):
        assert topk_predictable_share([]) == 0.0

    def test_handles_zeros_and_nan(self):
        values = [0.0, float("nan"), 1.0] * 5
        share = topk_predictable_share(values)
        assert 0.0 <= share <= 1.0


class TestLoopShare:
    def test_loop_dominated_workload(self):
        share = loop_instruction_share(get_workload("sgemm"), scale=0.3)
        assert share > 0.8
