"""Stratified allocation, the section store and incremental reuse."""
import json
import os

import pytest

from repro.eval import (
    SectionStore,
    partition_sections,
    prepare,
    run_campaign,
    run_campaign_stratified,
    stratified_allocation,
)
from repro.eval.fault_campaign import campaign_context
from repro.eval.incremental import section_plans, section_store_key
from repro.runtime.faults import ADVERSARIAL_KIND_WEIGHTS
from repro.workloads import get_workload

SCALE = 0.3
TRIALS = 20


@pytest.fixture(scope="module")
def conv1d():
    return get_workload("conv1d")


def result_dict(stratified):
    return stratified.result.to_dict()


class TestAllocation:
    def test_sums_exactly_and_tracks_proportions(self):
        counts = stratified_allocation([100, 200, 700], 10)
        assert sum(counts) == 10
        assert counts == [1, 2, 7]

    def test_largest_remainder_rounding(self):
        counts = stratified_allocation([1, 1, 1], 10)
        assert sum(counts) == 10
        assert sorted(counts) == [3, 3, 4]

    def test_small_trial_counts_still_sum(self):
        assert sum(stratified_allocation([5, 99999], 1)) == 1

    def test_empty_region_rejected(self):
        with pytest.raises(ValueError):
            stratified_allocation([0, 0], 5)


class TestSectionPlans:
    def test_plans_stay_inside_the_section_window(self, conv1d):
        inp = conv1d.test_inputs(1, seed=18, scale=SCALE)[0]
        prepared = prepare(conv1d, "UNSAFE")
        ctx = campaign_context(prepared, conv1d, inp)
        part = partition_sections(prepared, conv1d, inp, ctx.region)
        for section in part.sections:
            window = set()
            for start, length in section.segments:
                window.update(range(start, start + length))
            plans = section_plans(section, 25, 3, conv1d.name, "UNSAFE")
            assert len(plans) == 25
            assert all(plan.step in window for plan in plans)

    def test_streams_are_fingerprint_keyed(self, conv1d):
        """Two sections never share a plan stream, and the stream does not
        depend on the section's position in the partition."""
        inp = conv1d.test_inputs(1, seed=18, scale=SCALE)[0]
        prepared = prepare(conv1d, "UNSAFE")
        ctx = campaign_context(prepared, conv1d, inp)
        part = partition_sections(prepared, conv1d, inp, ctx.region)
        assert len(part.sections) >= 2
        a, b = part.sections[0], part.sections[1]
        plans_a = section_plans(a, 10, 0, conv1d.name, "UNSAFE")
        plans_b = section_plans(b, 10, 0, conv1d.name, "UNSAFE")
        assert [p.step for p in plans_a] != [p.step for p in plans_b]
        # same section again: byte-identical plans
        again = section_plans(a, 10, 0, conv1d.name, "UNSAFE")
        assert [(p.step, p.kind, p.bit, p.pick) for p in plans_a] \
            == [(p.step, p.kind, p.bit, p.pick) for p in again]


class TestStratifiedCampaign:
    def test_backends_tally_byte_identically(self, conv1d):
        ref = run_campaign_stratified(
            conv1d, "UNSAFE", TRIALS, seed=1, scale=SCALE, backend="ref")
        batch = run_campaign_stratified(
            conv1d, "UNSAFE", TRIALS, seed=1, scale=SCALE, backend="batch")
        assert result_dict(ref) == result_dict(batch)

    def test_differs_from_default_stream_but_same_shape(self, conv1d):
        """Stratified mode draws from different seed streams than the
        default campaign — same trial count and region, different plans."""
        default = run_campaign(conv1d, "UNSAFE", TRIALS, scale=SCALE)
        stratified = run_campaign_stratified(
            conv1d, "UNSAFE", TRIALS, scale=SCALE)
        assert stratified.result.trials == default.trials
        assert stratified.result.region_steps == default.region_steps

    def test_stateful_scheme_supported(self, conv1d):
        outcome = run_campaign_stratified(
            conv1d, "AR100", 8, scale=SCALE)
        assert outcome.result.trials == 8
        assert sum(outcome.result.tallies.values()) == 8


class TestStoreReuse:
    def test_cold_then_warm_is_byte_identical_with_full_reuse(
            self, conv1d, tmp_path):
        store = SectionStore(directory=str(tmp_path / "campaigns"))
        kwargs = dict(seed=2, scale=SCALE, store=store)
        cold = run_campaign_stratified(
            conv1d, "UNSAFE", TRIALS, reuse=True, **kwargs)
        assert cold.reused_sections == 0
        warm = run_campaign_stratified(
            conv1d, "UNSAFE", TRIALS, reuse=True, **kwargs)
        assert result_dict(warm) == result_dict(cold)
        populated = sum(1 for s in cold.sections if s.trials > 0)
        assert warm.reused_sections == populated
        assert warm.injected_trials == 0

    def test_store_roundtrip_zeroes_region_steps(self, conv1d, tmp_path):
        store = SectionStore(directory=str(tmp_path / "campaigns"))
        cold = run_campaign_stratified(
            conv1d, "UNSAFE", TRIALS, seed=2, scale=SCALE, store=store)
        files = os.listdir(store.directory)
        assert files
        with open(os.path.join(store.directory, files[0])) as handle:
            record = json.load(handle)
        assert record["payload"]["result"]["region_steps"] == 0
        key = files[0][:-len(".json")]
        part = store.get(key)
        assert part is not None
        assert part.region_steps == 0
        assert cold.result.region_steps > 0

    def test_corrupt_entry_is_a_miss_and_removed(self, conv1d, tmp_path):
        store = SectionStore(directory=str(tmp_path / "campaigns"))
        run_campaign_stratified(
            conv1d, "UNSAFE", TRIALS, seed=2, scale=SCALE, store=store)
        victim = sorted(os.listdir(store.directory))[0]
        path = os.path.join(store.directory, victim)
        with open(path, "w") as handle:
            handle.write("not json")
        fresh = SectionStore(directory=store.directory)
        assert fresh.get(victim[:-len(".json")]) is None
        assert not os.path.exists(path)
        # the campaign recovers by re-injecting the lost section
        warm = run_campaign_stratified(
            conv1d, "UNSAFE", TRIALS, seed=2, scale=SCALE,
            store=fresh, reuse=True)
        assert warm.injected_sections >= 1
        assert warm.reused_sections >= 1

    def test_fault_model_params_key_the_store(self, conv1d, tmp_path):
        """A different seed or kind mix must never be served stale
        tallies."""
        store = SectionStore(directory=str(tmp_path / "campaigns"))
        run_campaign_stratified(
            conv1d, "UNSAFE", TRIALS, seed=2, scale=SCALE, store=store)
        other_seed = run_campaign_stratified(
            conv1d, "UNSAFE", TRIALS, seed=3, scale=SCALE,
            store=store, reuse=True)
        assert other_seed.reused_sections == 0
        other_mix = run_campaign_stratified(
            conv1d, "UNSAFE", TRIALS, seed=2, scale=SCALE,
            store=store, reuse=True,
            kind_weights=ADVERSARIAL_KIND_WEIGHTS)
        assert other_mix.reused_sections == 0

    def test_store_key_covers_every_axis(self, conv1d):
        inp = conv1d.test_inputs(1, seed=18, scale=SCALE)[0]
        prepared = prepare(conv1d, "UNSAFE")
        ctx = campaign_context(prepared, conv1d, inp)
        part = partition_sections(prepared, conv1d, inp, ctx.region)
        section = part.sections[0]
        base = dict(workload="conv1d", scheme_hash="h", section=section,
                    trials=5, seed=0, scale=0.3,
                    kind_weights=(("value", 1.0),), max_steps=1000)
        key = section_store_key(**base)
        for field, value in [
            ("scheme_hash", "h2"), ("trials", 6), ("seed", 1),
            ("scale", 0.4), ("kind_weights", (("value", 0.5),)),
            ("max_steps", 2000),
        ]:
            assert section_store_key(**{**base, field: value}) != key
