import pytest

from repro.eval import (
    CampaignResult,
    Harness,
    figure2,
    figure7,
    figure8a,
    figure8b,
    run_campaign,
    table1,
    reporting,
)
from repro.runtime import Outcome
from repro.workloads import ALL_WORKLOADS, get_workload

SCALE = 0.35
TRIALS = 25


@pytest.fixture(scope="module")
def sgemm_campaigns():
    w = get_workload("sgemm")
    harness = Harness(w, scale=SCALE, timing=False)
    return {
        "UNSAFE": run_campaign(w, "UNSAFE", TRIALS, scale=SCALE),
        "SWIFT-R": run_campaign(w, "SWIFT-R", TRIALS, scale=SCALE),
        "AR100": run_campaign(
            w, "AR100", TRIALS, scale=SCALE, profiles=harness.profiles_for(1.0)
        ),
    }


class TestCampaign:
    def test_tallies_sum_to_trials(self, sgemm_campaigns):
        for campaign in sgemm_campaigns.values():
            assert sum(campaign.tallies.values()) == TRIALS

    def test_protection_ordering(self, sgemm_campaigns):
        """SWIFT-R must protect better than no protection at all."""
        assert (
            sgemm_campaigns["SWIFT-R"].protection_rate
            > sgemm_campaigns["UNSAFE"].protection_rate
        )

    def test_rskip_protects(self, sgemm_campaigns):
        assert (
            sgemm_campaigns["AR100"].protection_rate
            > sgemm_campaigns["UNSAFE"].protection_rate - 0.1
        )

    def test_deterministic_given_seed(self):
        w = get_workload("conv1d")
        a = run_campaign(w, "UNSAFE", 10, seed=3, scale=SCALE)
        b = run_campaign(w, "UNSAFE", 10, seed=3, scale=SCALE)
        assert a.tallies == b.tallies

    def test_false_negatives_only_for_rskip(self, sgemm_campaigns):
        assert sgemm_campaigns["UNSAFE"].false_negatives == 0
        assert sgemm_campaigns["SWIFT-R"].false_negatives == 0

    def test_rates(self, sgemm_campaigns):
        campaign = sgemm_campaigns["UNSAFE"]
        total = sum(campaign.rate(o) for o in Outcome)
        assert total == pytest.approx(1.0)


class TestFigureDrivers:
    def test_figure7_shape(self):
        workloads = [get_workload("conv1d"), get_workload("forwardprop")]
        result = figure7(workloads, schemes=("SWIFT-R", "AR100"), scale=SCALE)
        assert set(result.rows) == {"conv1d", "forwardprop"}
        for cells in result.rows.values():
            assert cells["SWIFT-R"]["instructions"] > 1.5
            assert cells["AR100"]["skip"] is not None
            assert cells["AR100"]["correct"] == 1.0
        averages = {a.scheme: a for a in result.averages()}
        assert averages["SWIFT-R"].skip_rate is None
        assert averages["AR100"].norm_time < averages["SWIFT-R"].norm_time
        text = reporting.render_figure7(result, "time")
        assert "average" in text and "conv1d" in text

    def test_figure8a_memo_ablation(self):
        rows = figure8a(get_workload("blackscholes"), ars=(20, 100), scale=SCALE)
        assert len(rows) == 2
        for row in rows:
            # the fallback predictor lifts the skip rate (Figure 8a)
            assert row.full_skip >= row.interp_only_skip - 0.05
        text = reporting.render_figure8a(rows)
        assert "AR20" in text

    def test_figure8b_input_variance(self):
        rows = figure8b(get_workload("lud"), inputs=3, scale=SCALE)
        assert len(rows) == 3
        assert all(r.swift_r_time > 1.0 for r in rows)
        text = reporting.render_figure8b(rows)
        assert "average" in text

    def test_figure2_motivation(self):
        rows = figure2([get_workload("conv1d")], scale=SCALE)
        (row,) = rows
        assert 0.0 <= row.trend_coverage <= 1.0
        assert 0.0 <= row.topk_coverage <= 1.0
        assert row.loop_share > 0.5  # conv1d is loop-dominated
        assert "conv1d" in reporting.render_figure2(rows)

    def test_table1_characterization(self):
        rows = table1(ALL_WORKLOADS, scale=0.4)
        by_name = {r.benchmark: r for r in rows}
        assert "function call" in by_name["blackscholes"].computation_type
        assert "varying trip count" in by_name["lud"].computation_type
        assert "conditional" in by_name["conv2d"].computation_type
        assert by_name["forwardprop"].location == "Top level"
        assert by_name["sgemm"].location == "Inside a outer loop"
        text = reporting.render_table1(rows)
        assert "blackscholes" in text


class TestReportingPrimitives:
    def test_render_table_alignment(self):
        text = reporting.render_table(["a", "bb"], [["x", "y"], ["longer", "z"]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[1].startswith("-")

    def test_render_figure9(self, sgemm_campaigns):
        results = {("sgemm", k): v for k, v in sgemm_campaigns.items()}
        text = reporting.render_figure9a(results, ["UNSAFE", "SWIFT-R", "AR100"])
        assert "sgemm" in text and "average" in text
        fn_text = reporting.render_figure9b(results, schemes=("AR100",))
        assert "AR100" in fn_text
