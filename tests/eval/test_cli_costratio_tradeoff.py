import pytest

from repro.cli import build_parser, main
from repro.eval import cost_ratio, section73
from repro.workloads import ALL_WORKLOADS, get_workload


class TestCostRatio:
    def test_ordering_holds_everywhere(self):
        for workload in ALL_WORKLOADS:
            ratio = cost_ratio(workload)
            one, memo, recompute = ratio.normalized()
            assert one == 1.0
            assert memo > one
            assert recompute > memo

    def test_blackscholes_uses_real_arity(self):
        ratio = cost_ratio(get_workload("blackscholes"))
        other = cost_ratio(get_workload("sgemm"))
        # six quantized inputs vs one: the memo level must cost more
        assert ratio.memoization > other.memoization

    def test_str(self):
        text = str(cost_ratio(get_workload("sgemm")))
        assert text.startswith("sgemm: 1.00 :")

    def test_rejects_targetless_module(self):
        import random

        from repro.ir import F64, Function, IRBuilder, Module
        from repro.workloads import Workload, WorkloadInput

        class Trivial(Workload):
            name = "trivial"

            def build(self):
                module = Module("trivial")
                func = Function("main", [], F64)
                module.add_function(func)
                IRBuilder(func).ret(0.0)
                return module

            def make_input(self, rng, scale=1.0):
                return WorkloadInput({}, [], ("x", 0), ("x", 0))

        with pytest.raises(ValueError, match="no prediction target"):
            cost_ratio(Trivial())


class TestSection73:
    def test_small_run_shape(self):
        workloads = [get_workload("sgemm")]
        rows = section73(
            workloads,
            schemes=("SWIFT-R", "AR100"),
            trials=10,
            perf_scale=0.3,
            sfi_scale=0.3,
        )
        by_scheme = {r.scheme: r for r in rows}
        assert by_scheme["AR100"].slowdown < by_scheme["SWIFT-R"].slowdown
        assert 0.0 <= by_scheme["AR100"].protection_rate <= 1.0


class TestCli:
    def test_parser_commands(self):
        parser = build_parser()
        for cmd in ("table1", "figure2", "figure7", "figure8a", "figure8b",
                    "figure9", "tradeoff", "costratio", "all"):
            args = parser.parse_args(["--scale", "0.4", cmd])
            assert callable(args.fn)

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_table1_end_to_end(self, capsys):
        assert main(["--scale", "0.3", "table1"]) == 0
        out = capsys.readouterr().out
        assert "blackscholes" in out
        assert "a function call" in out

    def test_costratio_end_to_end(self, capsys):
        assert main(["costratio"]) == 0
        out = capsys.readouterr().out
        assert "sgemm: 1.00" in out


class TestReportCommand:
    def test_report_formats_markdown(self, tmp_path, monkeypatch):
        from repro import cli

        def fake_all(args):
            print("== Table 1: selected benchmarks ==")
            print("-- sub figure --")
            print("row one")
            print("   (1.2s)")

        monkeypatch.setattr(cli, "cmd_all", fake_all)
        out = str(tmp_path / "results.md")
        assert cli.main(["report", "--output", out]) == 0
        text = open(out).read()
        assert "## Table 1: selected benchmarks" in text
        assert "### sub figure" in text
        assert "    row one" in text
