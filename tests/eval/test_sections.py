"""Section partition of the injection region (incremental campaigns)."""
import pytest

from repro.difftest.generator import generate_phased, mutate_function
from repro.eval import partition_sections, prepare
from repro.eval.fault_campaign import campaign_context
from repro.eval.schemes import PreparedProgram
from repro.eval.sections import function_section_fingerprint
from repro.ir.parser import parse_module
from repro.ir.printer import format_module
from repro.workloads import get_workload

SCALE = 0.3


def _partition(workload_name, scheme):
    workload = get_workload(workload_name)
    inp = workload.test_inputs(1, seed=18, scale=SCALE)[0]
    prepared = prepare(workload, scheme)
    ctx = campaign_context(prepared, workload, inp)
    part = partition_sections(prepared, workload, inp, ctx.region)
    return workload, inp, prepared, ctx, part


def _reprinted(prepared):
    """The same prepared program through a print/parse round trip."""
    module = parse_module(format_module(prepared.module))
    module.name = prepared.module.name
    return PreparedProgram(
        prepared.scheme, module, prepared.intrinsics, prepared.application,
        prepared.original_targets, prepared.main,
    )


class TestCoverage:
    @pytest.mark.parametrize("workload,scheme", [
        ("conv1d", "UNSAFE"),
        ("lud", "UNSAFE"),
        ("blackscholes", "SWIFT"),
    ])
    def test_partition_tiles_region_exactly(self, workload, scheme):
        """Sections cover [0, region_steps) with no gaps and no overlaps."""
        _, _, _, ctx, part = _partition(workload, scheme)
        assert part.region_steps == ctx.region_steps
        assert sum(s.step_count for s in part.sections) == ctx.region_steps
        segments = sorted(
            seg for section in part.sections for seg in section.segments)
        cursor = 0
        for start, length in segments:
            assert start == cursor, "gap or overlap in the partition"
            assert length > 0
            cursor += length
        assert cursor == ctx.region_steps

    def test_global_step_is_a_bijection(self):
        """Every region step is reachable from exactly one (section,
        local step) pair — the draw-local-then-map scheme loses nothing."""
        _, _, _, ctx, part = _partition("conv1d", "UNSAFE")
        seen = set()
        for section in part.sections:
            for local in range(section.step_count):
                step = section.global_step(local)
                assert step not in seen
                seen.add(step)
        assert seen == set(range(ctx.region_steps))

    def test_lud_splits_into_multiple_loop_sections(self):
        """lud has two top-level target loops: the partition must keep
        them apart (that separation is what incremental reuse buys)."""
        _, _, _, _, part = _partition("lud", "UNSAFE")
        loop_sections = [s for s in part.sections if s.name.startswith("main:")]
        assert len(loop_sections) >= 2


class TestFingerprints:
    def test_stable_under_reprint(self):
        """A no-op print/parse round trip changes nothing: same sections,
        same fingerprints, same step windows."""
        workload, inp, prepared, ctx, part = _partition("conv1d", "UNSAFE")
        again = partition_sections(_reprinted(prepared), workload, inp, ctx.region)
        assert [(s.name, s.fingerprint, s.segments) for s in part.sections] \
            == [(s.name, s.fingerprint, s.segments) for s in again.sections]

    def test_one_instruction_edit_changes_only_the_owner(self):
        """Mutating one function moves its section fingerprint and leaves
        every other function section byte-stable."""
        module = generate_phased(3, 7).module
        mutated = mutate_function(module, "phase1", seed=11)
        for name in sorted(module.functions):
            before = function_section_fingerprint(module, name)
            after = function_section_fingerprint(mutated, name)
            # main's closure reaches every phase, so it moves too
            expect_change = name in ("phase1", "main")
            assert (before != after) == expect_change, name

    def test_callee_edit_invalidates_caller_loop_section(self):
        """A loop section's fingerprint covers its static call closure:
        editing the callee of blackscholes' loop must invalidate the loop
        section even though the loop's own blocks are untouched."""
        workload, inp, prepared, ctx, part = _partition("blackscholes", "UNSAFE")
        callee = "BlkSchlsEqEuroNoDiv"
        assert f"@{callee}" in {s.name for s in part.sections}

        edited = _reprinted(prepared)
        mutated = mutate_function(edited.module, callee, seed=4)
        mutated.name = edited.module.name
        edited.module = mutated
        again = partition_sections(edited, workload, inp, ctx.region)

        for section in part.sections:
            after = again.by_name(section.name)
            if section.name.startswith("main:") or section.name == f"@{callee}":
                assert after.fingerprint != section.fingerprint, section.name
            else:
                assert after.fingerprint == section.fingerprint, section.name
