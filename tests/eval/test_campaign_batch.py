"""Batch-backend campaigns and chunk merging.

The lane-vectorized block runner must tally byte-identically to the
serial one — same trials, same seeds, same `CampaignResult` — for both
stateless and runtime-stateful schemes, through both the direct block
API and the `--backend batch` routing in `run_campaign`.  Plus the
`CampaignResult.merge` regression: chunks from different campaign
configurations (mismatched non-zero ``region_steps``) must refuse to
merge instead of silently keeping the first chunk's value.
"""
import pytest

from repro.eval.fault_campaign import (
    CampaignResult,
    campaign_context,
    run_campaign,
    run_trial_block,
    run_trial_block_batch,
)
from repro.eval.schemes import prepare
from repro.pipeline.registry import canonical_scheme
from repro.runtime.backend import set_default_backend
from repro.workloads import get_workload

SCALE = 0.35
SEED = 5


class TestMergeRegression:
    def _chunk(self, trials, region_steps):
        result = CampaignResult("conv1d", "UNSAFE", trials)
        result.region_steps = region_steps
        return result

    def test_mismatched_region_steps_rejected(self):
        """Chunks with different non-zero region_steps come from different
        campaign configurations; merging them used to silently keep the
        first chunk's value and mix incompatible tallies."""
        a = self._chunk(10, 1400)
        with pytest.raises(ValueError, match="region_steps"):
            a.merge(self._chunk(10, 900))
        assert a.trials == 20  # counts folded before the guard fired

    def test_matching_region_steps_merge(self):
        a = self._chunk(10, 1400)
        a.merge(self._chunk(15, 1400))
        assert (a.trials, a.region_steps) == (25, 1400)

    def test_zero_region_steps_adopted(self):
        a = self._chunk(10, 0)
        a.merge(self._chunk(10, 1400))
        assert a.region_steps == 1400
        a.merge(self._chunk(5, 0))  # resumed empty chunk: still fine
        assert (a.trials, a.region_steps) == (25, 1400)


def _blocks(workload_name, scheme_name, count, **batch_kwargs):
    workload = get_workload(workload_name)
    scheme = canonical_scheme(scheme_name, None)
    inp = workload.test_inputs(1, seed=SEED + 17, scale=SCALE)[0]
    prepared = prepare(workload, scheme)
    ctx = campaign_context(prepared, workload, inp)
    serial = run_trial_block(
        prepared, workload, inp, ctx, scheme, SEED, 0, count)
    batch = run_trial_block_batch(
        prepared, workload, inp, ctx, scheme, SEED, 0, count, **batch_kwargs)
    return serial, batch


class TestBatchBlock:
    def test_stateless_scheme_tallies_identical(self):
        serial, batch = _blocks("conv1d", "UNSAFE", 24)
        assert batch.to_dict() == serial.to_dict()

    def test_stateful_scheme_tallies_identical(self):
        """RSkip carries per-trial predictor state; the batch runner must
        keep trials isolated (per-lane prepared programs) so ``caught``
        and the false-negative split still match the serial block."""
        serial, batch = _blocks("conv1d", "AR50", 16)
        assert batch.to_dict() == serial.to_dict()

    def test_single_lane_batch_equals_plain_trial(self):
        serial, batch = _blocks("conv1d", "UNSAFE", 1)
        assert batch.to_dict() == serial.to_dict()

    def test_slab_width_does_not_change_tallies(self):
        """Trials are seeded per-trial, so slicing one block into many
        small lane slabs must reproduce the single-slab tallies."""
        serial, batch = _blocks("conv1d", "UNSAFE", 17, lanes=7)
        assert batch.to_dict() == serial.to_dict()


class TestBackendRouting:
    def test_run_campaign_routes_through_batch_backend(self):
        workload = get_workload("conv1d")
        reference = run_campaign(workload, "UNSAFE", 20, seed=SEED,
                                 scale=SCALE)
        set_default_backend("batch")
        try:
            batched = run_campaign(workload, "UNSAFE", 20, seed=SEED,
                                   scale=SCALE)
        finally:
            set_default_backend(None)
        assert batched.to_dict() == reference.to_dict()


@pytest.mark.slow
class TestFullScaleBatch:
    def test_full_width_slab_tallies_identical(self):
        """A block wider than one 256-lane slab, checked against the
        serial runner trial for trial."""
        serial, batch = _blocks("conv1d", "UNSAFE", 300)
        assert batch.to_dict() == serial.to_dict()

    def test_stateful_full_batch(self):
        serial, batch = _blocks("sgemm", "SWIFT-R", 60)
        assert batch.to_dict() == serial.to_dict()
