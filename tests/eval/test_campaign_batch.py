"""Batch-backend campaigns and chunk merging.

The lane-vectorized block runner must tally byte-identically to the
serial one — same trials, same seeds, same `CampaignResult` — for both
stateless and runtime-stateful schemes, through both the direct block
API and the `--backend batch` routing in `run_campaign`.  Plus the
`CampaignResult.merge` regression: chunks from different campaign
configurations (mismatched non-zero ``region_steps``) must refuse to
merge instead of silently keeping the first chunk's value.
"""
import pytest

from repro.eval.fault_campaign import (
    CampaignResult,
    campaign_context,
    run_campaign,
    run_trial_block,
    run_trial_block_batch,
)
from repro.eval.schemes import prepare
from repro.pipeline.registry import canonical_scheme
from repro.runtime.backend import set_default_backend
from repro.runtime.faults import ADVERSARIAL_KIND_WEIGHTS
from repro.workloads import get_workload

SCALE = 0.35
SEED = 5


class TestMergeRegression:
    def _chunk(self, trials, region_steps):
        result = CampaignResult("conv1d", "UNSAFE", trials)
        result.region_steps = region_steps
        return result

    def test_mismatched_region_steps_rejected(self):
        """Chunks with different non-zero region_steps come from different
        campaign configurations; merging them used to silently keep the
        first chunk's value and mix incompatible tallies."""
        a = self._chunk(10, 1400)
        with pytest.raises(ValueError, match="region_steps"):
            a.merge(self._chunk(10, 900))
        assert a.trials == 20  # counts folded before the guard fired

    def test_matching_region_steps_merge(self):
        a = self._chunk(10, 1400)
        a.merge(self._chunk(15, 1400))
        assert (a.trials, a.region_steps) == (25, 1400)

    def test_zero_region_steps_adopted(self):
        a = self._chunk(10, 0)
        a.merge(self._chunk(10, 1400))
        assert a.region_steps == 1400
        a.merge(self._chunk(5, 0))  # resumed empty chunk: still fine
        assert (a.trials, a.region_steps) == (25, 1400)


def _blocks(workload_name, scheme_name, count, kind_weights=None,
            **batch_kwargs):
    workload = get_workload(workload_name)
    scheme = canonical_scheme(scheme_name, None)
    inp = workload.test_inputs(1, seed=SEED + 17, scale=SCALE)[0]
    prepared = prepare(workload, scheme)
    ctx = campaign_context(prepared, workload, inp)
    serial_kwargs = {}
    if kind_weights is not None:
        serial_kwargs["kind_weights"] = kind_weights
        batch_kwargs["kind_weights"] = kind_weights
    serial = run_trial_block(
        prepared, workload, inp, ctx, scheme, SEED, 0, count, **serial_kwargs)
    batch = run_trial_block_batch(
        prepared, workload, inp, ctx, scheme, SEED, 0, count, **batch_kwargs)
    return serial, batch


class TestBatchBlock:
    def test_stateless_scheme_tallies_identical(self):
        serial, batch = _blocks("conv1d", "UNSAFE", 24)
        assert batch.to_dict() == serial.to_dict()

    def test_stateful_scheme_tallies_identical(self):
        """RSkip carries per-trial predictor state; the batch runner must
        keep trials isolated (per-lane prepared programs) so ``caught``
        and the false-negative split still match the serial block."""
        serial, batch = _blocks("conv1d", "AR50", 16)
        assert batch.to_dict() == serial.to_dict()

    def test_single_lane_batch_equals_plain_trial(self):
        serial, batch = _blocks("conv1d", "UNSAFE", 1)
        assert batch.to_dict() == serial.to_dict()

    def test_slab_width_does_not_change_tallies(self):
        """Trials are seeded per-trial, so slicing one block into many
        small lane slabs must reproduce the single-slab tallies."""
        serial, batch = _blocks("conv1d", "UNSAFE", 17, lanes=7)
        assert batch.to_dict() == serial.to_dict()


class TestMixedKinds:
    """One kind_weights table mixing the classic kinds (value / branch /
    addr) with the control-flow kinds (skip / skip-burst / cf): the batch
    engine must peel armed lanes to its scalar path and still tally
    byte-identically to the reference interpreter, per fault kind."""

    def test_adversarial_mix_tallies_identical(self):
        serial, batch = _blocks("conv1d", "UNSAFE", 32,
                                kind_weights=ADVERSARIAL_KIND_WEIGHTS)
        assert batch.to_dict() == serial.to_dict()
        # the mix is 35% control kinds over 32 trials: the campaign must
        # actually have drawn some, or this test checks nothing
        drawn = set(serial.kind_tallies)
        assert drawn & {"skip", "skip-burst", "cf"}
        assert sum(sum(t.values()) for t in serial.kind_tallies.values()) == 32

    def test_mixed_kinds_under_protection(self):
        serial, batch = _blocks("conv1d", "SWIFT", 24,
                                kind_weights=ADVERSARIAL_KIND_WEIGHTS)
        assert batch.to_dict() == serial.to_dict()

    def test_slab_width_independent_with_mixed_kinds(self):
        """Narrow slabs change which lanes share a slab (and therefore
        which peel-forks happen); the tallies must not notice."""
        wide, _ = _blocks("conv1d", "UNSAFE", 26,
                          kind_weights=ADVERSARIAL_KIND_WEIGHTS)
        narrow_serial, narrow = _blocks(
            "conv1d", "UNSAFE", 26,
            kind_weights=ADVERSARIAL_KIND_WEIGHTS, lanes=5)
        assert narrow.to_dict() == wide.to_dict() == narrow_serial.to_dict()

    def test_kind_tallies_roundtrip_and_merge(self):
        serial, _ = _blocks("conv1d", "UNSAFE", 16,
                            kind_weights=ADVERSARIAL_KIND_WEIGHTS)
        clone = CampaignResult.from_dict(serial.to_dict())
        assert clone.to_dict() == serial.to_dict()
        clone.merge(CampaignResult.from_dict(serial.to_dict()))
        assert clone.trials == 32
        for kind, tallies in serial.kind_tallies.items():
            assert clone.kind_tallies[kind] == tallies + tallies

    def test_old_checkpoint_without_kind_tallies_loads(self):
        serial, _ = _blocks("conv1d", "UNSAFE", 8)
        data = serial.to_dict()
        del data["kind_tallies"]  # checkpoint written before this field
        restored = CampaignResult.from_dict(data)
        assert restored.kind_tallies == {}
        assert restored.trials == serial.trials

    def test_parallel_path_carries_custom_kind_weights(self):
        """--jobs N with a non-default mix tallies exactly like serial
        (the mix used to be rejected on this path; now it is plumbed
        through the worker task args)."""
        workload = get_workload("conv1d")
        serial = run_campaign(workload, "UNSAFE", 8, seed=SEED, scale=SCALE,
                              kind_weights=ADVERSARIAL_KIND_WEIGHTS)
        parallel = run_campaign(workload, "UNSAFE", 8, seed=SEED, scale=SCALE,
                                jobs=2, kind_weights=ADVERSARIAL_KIND_WEIGHTS)
        assert parallel.to_dict() == serial.to_dict()


class TestBackendRouting:
    def test_run_campaign_routes_through_batch_backend(self):
        workload = get_workload("conv1d")
        reference = run_campaign(workload, "UNSAFE", 20, seed=SEED,
                                 scale=SCALE)
        set_default_backend("batch")
        try:
            batched = run_campaign(workload, "UNSAFE", 20, seed=SEED,
                                   scale=SCALE)
        finally:
            set_default_backend(None)
        assert batched.to_dict() == reference.to_dict()


@pytest.mark.slow
class TestFullScaleBatch:
    def test_full_width_slab_tallies_identical(self):
        """A block wider than one 256-lane slab, checked against the
        serial runner trial for trial."""
        serial, batch = _blocks("conv1d", "UNSAFE", 300)
        assert batch.to_dict() == serial.to_dict()

    def test_stateful_full_batch(self):
        serial, batch = _blocks("sgemm", "SWIFT-R", 60)
        assert batch.to_dict() == serial.to_dict()


class TestProtocolSchemes:
    """REPLAY<n>/CKPT<i> flow through the same single protocol dispatch
    point as rskip in both engines: per-lane intrinsic tables.  The
    tallies must match the serial reference byte for byte."""

    def test_replay_tallies_identical(self):
        serial, batch = _blocks("conv1d", "replay2", 16)
        assert batch.to_dict() == serial.to_dict()

    def test_ckpt_tallies_identical(self):
        serial, batch = _blocks("conv1d", "ckpt8", 16)
        assert batch.to_dict() == serial.to_dict()

    def test_ckpt_fixed_interval_tallies_identical(self):
        serial, batch = _blocks("conv1d", "ckpt8fix", 12)
        assert batch.to_dict() == serial.to_dict()

    def test_slab_width_independence(self):
        wide_serial, wide = _blocks("conv1d", "replay2", 15, lanes=5)
        narrow_serial, narrow = _blocks("conv1d", "replay2", 15, lanes=7)
        assert wide_serial.to_dict() == narrow_serial.to_dict()
        assert wide.to_dict() == wide_serial.to_dict()
        assert narrow.to_dict() == narrow_serial.to_dict()

    def test_ckpt_rollback_deterministic(self):
        """Seeded faulty trials exercise the rollback/vote path; the same
        block run twice must reproduce the exact same tallies, and some
        trials must actually be caught by the replay comparison."""
        first, _ = _blocks("conv1d", "ckpt4", 24)
        second, _ = _blocks("conv1d", "ckpt4", 24)
        assert first.to_dict() == second.to_dict()
        assert first.caught > 0
