import pytest

from repro.core import RSkipConfig
from repro.eval import Harness, default_ars
from repro.workloads import get_workload


@pytest.fixture(scope="module")
def sgemm_harness():
    return Harness(get_workload("sgemm"), scale=0.4, verify=True)


@pytest.fixture(scope="module")
def sgemm_records(sgemm_harness):
    inp = sgemm_harness.workload.test_inputs(1, scale=0.4)[0]
    return sgemm_harness.run_all(["SWIFT-R", "AR20", "AR100"], inp)


class TestRunAll:
    def test_unsafe_is_baseline(self, sgemm_records):
        base = sgemm_records["UNSAFE"]
        assert base.correct is True
        norm = base.normalized(base)
        assert norm == {"time": 1.0, "instructions": 1.0, "ipc": 1.0}

    def test_all_schemes_correct(self, sgemm_records):
        for scheme, rec in sgemm_records.items():
            assert rec.correct, f"{scheme} corrupted the output"

    def test_overhead_ordering(self, sgemm_records):
        base = sgemm_records["UNSAFE"]
        swift_r = sgemm_records["SWIFT-R"].normalized(base)
        ar100 = sgemm_records["AR100"].normalized(base)
        # the headline result: RSkip at AR100 is cheaper than SWIFT-R
        assert ar100["instructions"] < swift_r["instructions"]
        assert ar100["time"] < swift_r["time"]
        assert swift_r["instructions"] > 2.0

    def test_skip_rate_only_for_rskip(self, sgemm_records):
        assert sgemm_records["SWIFT-R"].skip_rate is None
        assert sgemm_records["AR20"].skip_rate is not None
        assert 0.0 <= sgemm_records["AR20"].skip_rate <= 1.0

    def test_wider_ar_skips_no_less(self, sgemm_records):
        assert (
            sgemm_records["AR100"].skip_rate
            >= sgemm_records["AR20"].skip_rate - 0.05
        )


class TestTraining:
    def test_profiles_cached(self, sgemm_harness):
        p1 = sgemm_harness.profiles_for(0.2)
        p2 = sgemm_harness.profiles_for(0.2)
        assert p1 is p2

    def test_profiles_differ_per_ar(self, sgemm_harness):
        p20 = sgemm_harness.profiles_for(0.2)
        p100 = sgemm_harness.profiles_for(1.0)
        assert p20 is not p100

    def test_traces_recorded_once(self, sgemm_harness):
        sgemm_harness.profiles_for(0.5)
        traces = sgemm_harness._traces
        sgemm_harness.profiles_for(0.8)
        assert sgemm_harness._traces is traces

    def test_blackscholes_trains_memo(self):
        harness = Harness(get_workload("blackscholes"), scale=0.3, timing=False)
        profiles = harness.profiles_for(0.2)
        (profile,) = profiles.values()
        assert profile.memo is not None
        assert harness._memo_keys

    def test_memo_disabled_by_config(self):
        harness = Harness(
            get_workload("blackscholes"),
            config=RSkipConfig(memoization=False),
            scale=0.3,
            timing=False,
        )
        (profile,) = harness.profiles_for(0.2).values()
        assert profile.memo is None


class TestPerRunStats:
    def test_prepared_programs_are_cached(self):
        harness = Harness(get_workload("sgemm"), scale=0.3, timing=False)
        assert harness.prepare_scheme("AR100") is harness.prepare_scheme("AR100")
        assert (
            harness.prepare_scheme("AR100", fresh=True)
            is not harness.prepare_scheme("AR100")
        )

    def test_reused_program_reports_per_run_delta(self):
        """Running the same input twice on one prepared program reports the
        same per-run stats — not a cumulative skip rate."""
        harness = Harness(get_workload("sgemm"), scale=0.3, timing=False)
        inp = harness.workload.test_inputs(1, scale=0.3)[0]
        r1 = harness.run_scheme("AR100", inp)
        r2 = harness.run_scheme("AR100", inp)
        assert r1.stats == r2.stats
        assert r1.skip_rate == pytest.approx(r2.skip_rate)
        assert r2.stats.elements == r1.stats.elements  # not doubled


class TestMisc:
    def test_default_ars(self):
        assert default_ars() == (0.2, 0.5, 0.8, 1.0)

    def test_timing_toggle(self):
        harness = Harness(get_workload("sgemm"), scale=0.3, timing=False)
        inp = harness.workload.test_inputs(1, scale=0.3)[0]
        rec = harness.run_scheme("UNSAFE", inp)
        assert rec.cycles == 0 and rec.ipc == 0.0
