PYTHON ?= python
PYTHONPATH := src

.PHONY: test verify bench difftest report-demo serve-smoke

## tier-1 unit/integration suite
test:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest -x -q

## tier-1 suite + backend-equivalence smokes (O4/O5 over 60 generated
## programs each, O6 exhaustive single-skip model checking over 20, O7
## incremental-campaign equivalence over 10) + a batch-backend campaign
## smoke (tallies must be byte-identical to the reference path) + a
## mixed-kinds smoke (SEU + skip/cf kinds in one campaign, again
## serial==batch) + an incremental smoke (warm stratified re-campaign
## must fully reuse the section store and tally byte-identically) +
## artifact-cache byte-identity over the checked-in corpus (off vs on)
## + the protocol smoke (O3 over every registered scheme's declared
## contract, workload-backed; predictor-vs-fixed CKPT campaigns
## byte-identical serial vs batch with the fault-likelihood signal
## demonstrably steering checkpoint frequency).
## Full exhaustive skip sweeps stay behind pytest's `slow` marker.
verify: test
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro difftest --oracle o4 --n 60
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro difftest --oracle o5 --n 60
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro difftest --oracle o6 --n 20
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro difftest --oracle o7 --n 10
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -c "from repro.eval.fault_campaign import run_campaign; from repro.runtime.backend import set_default_backend; from repro.workloads import get_workload; w = get_workload('conv1d'); a = run_campaign(w, 'UNSAFE', 30, seed=1, scale=0.35); set_default_backend('batch'); b = run_campaign(w, 'UNSAFE', 30, seed=1, scale=0.35); assert b.to_dict() == a.to_dict(), 'batch campaign diverged from ref'; print('batch campaign smoke: 30 trials, tallies byte-identical')"
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -c "from repro.eval.fault_campaign import run_campaign; from repro.runtime.backend import set_default_backend; from repro.runtime.faults import ADVERSARIAL_KIND_WEIGHTS as KW; from repro.workloads import get_workload; w = get_workload('conv1d'); a = run_campaign(w, 'UNSAFE', 30, seed=1, scale=0.35, kind_weights=KW); set_default_backend('batch'); b = run_campaign(w, 'UNSAFE', 30, seed=1, scale=0.35, kind_weights=KW); set_default_backend(None); assert b.to_dict() == a.to_dict(), 'mixed-kinds campaign diverged from ref'; assert set(a.kind_tallies) & {'skip', 'skip-burst', 'cf'}, 'adversarial mix drew no skip kinds'; print('mixed-kinds smoke: 30 trials, tallies byte-identical')"
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -c "import tempfile, os; from repro.eval import SectionStore, run_campaign_stratified; from repro.workloads import get_workload; w = get_workload('lud'); tmp = tempfile.mkdtemp(prefix='repro-inc-'); store = SectionStore(directory=os.path.join(tmp, 'campaigns')); cold = run_campaign_stratified(w, 'UNSAFE', 30, seed=1, scale=0.35, store=store, reuse=True); warm = run_campaign_stratified(w, 'UNSAFE', 30, seed=1, scale=0.35, store=store, reuse=True); assert cold.reused_sections == 0 and warm.injected_trials == 0, 'store reuse pattern wrong'; assert warm.result.to_dict() == cold.result.to_dict(), 'incremental diverged from scratch'; print('incremental smoke: 30 trials, %d sections fully reused, tallies byte-identical' % warm.reused_sections)"
	PYTHONPATH=$(PYTHONPATH) REPRO_CACHE=off $(PYTHON) -m repro cache-check
	PYTHONPATH=$(PYTHONPATH) REPRO_CACHE=on $(PYTHON) -m repro cache-check
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) scripts/protocol_smoke.py
	$(MAKE) serve-smoke

## serve daemon smoke: two concurrent identical /protect requests must
## cost one computation (dedup counters asserted), and a campaign job
## SIGKILLed mid-run must resume after a daemon restart to tallies
## byte-identical to the uninterrupted engine run (checkpoint recovery).
serve-smoke:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) scripts/serve_smoke.py

## regenerate every table & figure
bench:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest benchmarks/ --benchmark-only -s

## full differential-testing sweep (all oracles)
difftest:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro difftest --n 200

## trace one workload run and render the observability report
report-demo:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro --scale 0.35 run blackscholes --scheme AR50 --trace-out demo-trace.jsonl
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro report demo-trace.jsonl
