PYTHON ?= python
PYTHONPATH := src

.PHONY: test verify bench difftest report-demo

## tier-1 unit/integration suite
test:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest -x -q

## tier-1 suite + backend-equivalence smoke (O4 over 60 generated programs)
## + artifact-cache byte-identity over the checked-in corpus (off vs on)
verify: test
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro difftest --oracle o4 --n 60
	PYTHONPATH=$(PYTHONPATH) REPRO_CACHE=off $(PYTHON) -m repro cache-check
	PYTHONPATH=$(PYTHONPATH) REPRO_CACHE=on $(PYTHON) -m repro cache-check

## regenerate every table & figure
bench:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest benchmarks/ --benchmark-only -s

## full differential-testing sweep (all oracles)
difftest:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro difftest --n 200

## trace one workload run and render the observability report
report-demo:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro --scale 0.35 run blackscholes --scheme AR50 --trace-out demo-trace.jsonl
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro report demo-trace.jsonl
