PYTHON ?= python
PYTHONPATH := src

.PHONY: test verify bench difftest

## tier-1 unit/integration suite
test:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest -x -q

## tier-1 suite + backend-equivalence smoke (O4 over 60 generated programs)
verify: test
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro difftest --oracle o4 --n 60

## regenerate every table & figure
bench:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest benchmarks/ --benchmark-only -s

## full differential-testing sweep (all oracles)
difftest:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro difftest --n 200
