PYTHON ?= python
PYTHONPATH := src

.PHONY: test verify bench difftest report-demo

## tier-1 unit/integration suite
test:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest -x -q

## tier-1 suite + backend-equivalence smoke (O4 over 60 generated programs)
verify: test
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro difftest --oracle o4 --n 60

## regenerate every table & figure
bench:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest benchmarks/ --benchmark-only -s

## full differential-testing sweep (all oracles)
difftest:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro difftest --n 200

## trace one workload run and render the observability report
report-demo:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro --scale 0.35 run blackscholes --scheme AR50 --trace-out demo-trace.jsonl
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro report demo-trace.jsonl
