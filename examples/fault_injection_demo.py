"""Statistical fault injection demo (the Figure 9 experiment, one workload).

Injects single-event upsets into sgemm's detected loop under four
protection schemes and prints the outcome breakdown — watch SWIFT-R and
RSkip absorb faults the unprotected program turns into silent data
corruption.

Run:  python examples/fault_injection_demo.py [trials]
"""
import sys

from repro.eval import Harness, run_campaign
from repro.runtime import Outcome
from repro.workloads import get_workload

SCALE = 0.4


def main() -> None:
    trials = int(sys.argv[1]) if len(sys.argv) > 1 else 80
    workload = get_workload("sgemm")
    harness = Harness(workload, scale=SCALE, timing=False)

    print(f"Injecting {trials} single bit flips per scheme into sgemm's "
          f"detected loop...\n")
    header = f"{'scheme':9s}" + "".join(f"{str(o):>11s}" for o in Outcome)
    print(header + f"{'FN':>7s}")
    print("-" * len(header) + "-------")

    for scheme in ("UNSAFE", "SWIFT-R", "AR20", "AR100"):
        profiles = None
        if scheme.startswith("AR"):
            profiles = harness.profiles_for(int(scheme[2:]) / 100.0)
        campaign = run_campaign(
            workload, scheme, trials, scale=SCALE, profiles=profiles
        )
        row = f"{scheme:9s}"
        for outcome in Outcome:
            row += f"{campaign.rate(outcome):>10.1%} "
        row += f"{campaign.fn_rate:>6.1%}"
        print(row)

    print(
        "\nReading the table: 'Correct' is the protection rate. The paper "
        "reports UNSAFE 76.7%, SWIFT-R 97.2%, AR20 95.7%, AR100 92.5% "
        "averaged over nine benchmarks; false negatives (FN) grow with "
        "the acceptable range."
    )


if __name__ == "__main__":
    main()
