"""The paper's flagship workload: blackscholes under RSkip.

Trains the predictors on disjoint training inputs, then prices a test
portfolio under every acceptable range — with and without the
approximate-memoization fallback (the Figure 8a story).

Run:  python examples/protect_blackscholes.py
"""
from repro.core import RSkipConfig
from repro.eval import Harness
from repro.workloads import get_workload

SCALE = 0.6


def evaluate(memoization: bool):
    workload = get_workload("blackscholes")
    harness = Harness(
        workload,
        config=RSkipConfig(memoization=memoization),
        scale=SCALE,
    )
    inp = workload.test_inputs(1, scale=SCALE)[0]
    records = harness.run_all(["SWIFT-R", "AR20", "AR50", "AR80", "AR100"], inp)
    return records


def main() -> None:
    print("Training and running blackscholes (this takes a few seconds)...\n")
    full = evaluate(memoization=True)
    solo = evaluate(memoization=False)
    base = full["UNSAFE"]

    print(f"{'scheme':9s} {'time':>7s} {'instrs':>7s} {'skip (interp only)':>20s} {'skip (+memo)':>13s} {'ok':>4s}")
    swift = full["SWIFT-R"].normalized(base)
    print(f"{'SWIFT-R':9s} {swift['time']:6.2f}x {swift['instructions']:6.2f}x {'-':>20s} {'-':>13s} {full['SWIFT-R'].correct!s:>4s}")
    for scheme in ("AR20", "AR50", "AR80", "AR100"):
        norm = full[scheme].normalized(base)
        interp_skip = solo[scheme].skip_rate
        full_skip = full[scheme].skip_rate
        print(
            f"{scheme:9s} {norm['time']:6.2f}x {norm['instructions']:6.2f}x "
            f"{interp_skip:>19.1%} {full_skip:>12.1%} {full[scheme].correct!s:>4s}"
        )

    print("\nPaper reference (Fig. 8a): interpolation alone manages ~11-67% "
          "skip depending on AR; the memoization fallback lifts every AR "
          "above 99% on their inputs.")


if __name__ == "__main__":
    main()
