"""Train once, deploy anywhere: profile serialization.

RSkip's offline training produces per-loop artifacts — the QoS model
(context signature -> tuning parameter) and the memoization lookup table.
A deployment ships them next to the executable.  This example trains on
blackscholes, saves the profile to JSON, reloads it in a "fresh process",
and shows the reloaded profile performing identically.

Run:  python examples/train_and_deploy.py
"""
import os
import tempfile

from repro.core import RSkipConfig, load_profiles, save_profiles
from repro.eval import Harness, prepare
from repro.runtime import Interpreter
from repro.workloads import get_workload

SCALE = 0.6
AR = 0.2


def run_with_profiles(workload, profiles, inp):
    prepared = prepare(workload, "AR20", RSkipConfig(), profiles)
    memory = workload.fresh_memory(prepared.module, inp)
    interp = Interpreter(prepared.module, memory=memory)
    interp.register_intrinsics(prepared.intrinsics)
    interp.run(prepared.main, inp.args)
    return prepared.runtime.total_stats()


def main() -> None:
    workload = get_workload("blackscholes")

    # --- training side -------------------------------------------------
    print("Training on disjoint training inputs...")
    harness = Harness(workload, scale=SCALE, timing=False)
    profiles = harness.profiles_for(AR)
    (key, profile), = profiles.items()
    print(f"  loop {key}:")
    print(f"    QoS table: {len(profile.qos.table)} signatures, "
          f"default TP {profile.default_tp}")
    if profile.memo:
        print(f"    memo table: {len(profile.memo.table)} cells, "
              f"bits per input {profile.memo.bits}")

    path = os.path.join(tempfile.gettempdir(), "rskip-blackscholes.json")
    save_profiles(profiles, path)
    print(f"  saved -> {path} ({os.path.getsize(path)} bytes)")

    # --- deployment side -------------------------------------------------
    print("\nReloading the profile and pricing a test portfolio...")
    restored = load_profiles(path)
    inp = workload.test_inputs(1, scale=SCALE)[0]

    fresh = run_with_profiles(workload, profiles, inp)
    reloaded = run_with_profiles(workload, restored, inp)

    print(f"  trained profile : skip {fresh.skip_rate:.1%} "
          f"({fresh.skipped}/{fresh.elements})")
    print(f"  reloaded profile: skip {reloaded.skip_rate:.1%} "
          f"({reloaded.skipped}/{reloaded.elements})")
    assert fresh.skipped == reloaded.skipped
    print("  identical behaviour — the JSON round-trip is faithful.")


if __name__ == "__main__":
    main()
