"""Quickstart: protect a program with RSkip in ~60 lines.

Builds a small image-smoothing kernel in the IR, lets the compiler detect
the prediction target, applies RSkip, and compares the protected run
against the unprotected and SWIFT-R baselines.

Run:  python examples/quickstart.py
"""
import math

from repro.analysis import detect_target_loops
from repro.core import RSkipConfig, apply_rskip
from repro.ir import F64, I64, Function, IRBuilder, Module, Reg, verify_module
from repro.runtime import Interpreter, Memory, TimingModel
from repro.transforms import apply_swift_r

N = 96
KERNEL = 9


def build_program() -> Module:
    """out[i] = weighted average of x[i .. i+KERNEL-1]."""
    module = Module("smooth")
    module.add_global("x", N + KERNEL)
    module.add_global("w", KERNEL)
    module.add_global("out", N)

    func = Function("main", [Reg("n", I64)], F64)
    module.add_function(func)
    b = IRBuilder(func)
    xp = b.mov(b.global_addr("x"), hint="xp")
    wp = b.mov(b.global_addr("w"), hint="wp")
    op = b.mov(b.global_addr("out"), hint="op")

    with b.loop(0, func.params[0], hint="smooth") as i:  # <- detected loop
        acc = b.mov(0.0, hint="acc")
        with b.loop(0, KERNEL, hint="tap") as j:
            xv = b.load(b.padd(xp, b.add(i, j)))
            wv = b.load(b.padd(wp, j))
            b.mov(b.fadd(acc, b.fmul(xv, wv)), dest=acc)
        b.store(acc, b.padd(op, i))
    b.ret(0.0)
    verify_module(module)
    return module


def fresh_memory(module: Module) -> Memory:
    memory = Memory()
    memory.load_globals(module)
    memory.write_global("x", [2.0 + math.sin(k / 14.0) for k in range(N + KERNEL)])
    memory.write_global("w", [1.0 / KERNEL] * KERNEL)
    return memory


def run(module: Module, intrinsics=None):
    memory = fresh_memory(module)
    interp = Interpreter(module, memory=memory, timing=TimingModel())
    if intrinsics:
        interp.register_intrinsics(intrinsics)
    result = interp.run("main", [N])
    return result, memory.read_global("out", N)


def main() -> None:
    # 1. what does the compiler see?
    probe = build_program()
    targets = detect_target_loops(probe.get_function("main"), probe)
    print("Detected prediction targets:")
    for target in targets:
        print(f"  {target.describe()}")

    # 2. the three executables
    base_result, golden = run(build_program())

    swift_r = build_program()
    apply_swift_r(swift_r)
    swift_result, swift_out = run(swift_r)

    rskip = build_program()
    app = apply_rskip(rskip, RSkipConfig(acceptable_range=0.5))
    rskip_result, rskip_out = run(rskip, app.intrinsics())

    # 3. compare
    print(f"\n{'scheme':10s} {'instructions':>14s} {'cycles':>10s} {'output ok':>10s}")
    for name, result, out in (
        ("UNSAFE", base_result, golden),
        ("SWIFT-R", swift_result, swift_out),
        ("RSkip", rskip_result, rskip_out),
    ):
        ratio = result.steps / base_result.steps
        cyc = result.cycles / base_result.cycles
        print(f"{name:10s} {result.steps:>8d} ({ratio:4.2f}x) {cyc:8.2f}x {out == golden!s:>8s}")

    stats = app.runtime.total_stats()
    print(
        f"\nRSkip skipped {stats.skipped}/{stats.elements} re-computations "
        f"({stats.skip_rate:.1%}) across {stats.phases} phases."
    )


if __name__ == "__main__":
    main()
