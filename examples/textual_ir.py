"""Work with the textual IR: parse a program from source, protect it, and
diff the protected version.

Everything the compiler does is inspectable as text — this example parses
a program written by hand, runs the RSkip pipeline, and prints the
transformed loop so you can see the outlined body, the prediction
intrinsics and the re-computation drain.

Run:  python examples/textual_ir.py
"""
from repro.core import RSkipConfig, apply_rskip
from repro.ir import format_function, parse_module, verify_module
from repro.runtime import Interpreter, Memory

SOURCE = """
module window_energy

global @signal 256 f64
global @energy 256 f64

func @main(%n: i64, %w: i64) -> f64 {
entry:
  %sp = mov @signal
  %ep = mov @energy
  %i = mov 0:i64
  br head
head:
  %more = icmp lt %i, %n
  cbr %more, body, done
body:
  %acc = mov 0.0:f64
  %k = mov 0:i64
  br red.head
red.head:
  %kcheck = icmp lt %k, %w
  cbr %kcheck, red.body, red.done
red.body:
  %idx = add %i, %k
  %addr = add %sp, %idx
  %v = load %addr : f64
  %sq = fmul %v, %v
  %acc = fadd %acc, %sq
  %k = add %k, 1:i64
  br red.head
red.done:
  %out = add %ep, %i
  store %acc, %out
  br latch
latch:
  %i = add %i, 1:i64
  br head
done:
  ret 0.0:f64
}
"""

N, W = 96, 12


def run(module, intrinsics=None):
    memory = Memory()
    memory.load_globals(module)
    memory.write_global(
        "signal", [1.0 + 0.5 * (k % 37) / 37.0 for k in range(N + W)]
    )
    interp = Interpreter(module, memory=memory)
    if intrinsics:
        interp.register_intrinsics(intrinsics)
    result = interp.run("main", [N, W])
    return result, memory.read_global("energy", N)


def main() -> None:
    module = parse_module(SOURCE)
    verify_module(module)
    base_result, golden = run(module)

    protected = parse_module(SOURCE)
    app = apply_rskip(protected, RSkipConfig(acceptable_range=0.5))
    verify_module(protected)
    result, output = run(protected, app.intrinsics())

    layout = app.layouts[0]
    print(f"Detected target: {layout.key}  (mode: {layout.mode})")
    print(f"Outlined body:   @{layout.body}  redundant copy: @{layout.dup}")
    print(f"CP fallback:     @{layout.cp}\n")

    print("--- the outlined computation the predictors guard ---")
    print(format_function(protected.get_function(layout.body)))

    stats = app.runtime.total_stats()
    print("\n--- results ---")
    print(f"output identical:     {output == golden}")
    print(f"skip rate:            {stats.skip_rate:.1%}")
    print(
        f"dynamic instructions: {base_result.steps} -> {result.steps} "
        f"({result.steps / base_result.steps:.2f}x)"
    )


if __name__ == "__main__":
    main()
