"""Bring your own benchmark: plug a new program into the full pipeline.

Defines a fresh Workload (a polynomial feature expansion kernel), and runs
it through everything the nine paper benchmarks get: pattern detection,
offline training, the SWIFT-R baseline, RSkip at two acceptable ranges,
and a mini fault-injection campaign.

Run:  python examples/custom_workload.py
"""
import random

from repro.core import RSkipConfig
from repro.eval import Harness, run_campaign
from repro.ir import F64, I64, Function, IRBuilder, Module, Reg, verify_module
from repro.workloads import Workload, WorkloadInput
from repro.workloads.inputs import smooth_series

N_CAP = 512


class PolyFeatures(Workload):
    """out[i] = sum_k c[k] * x[i]^k  (a Horner-style feature expansion)."""

    name = "polyfeatures"
    domain = "Machine learning (demo)"
    description = "Polynomial feature expansion"

    def build(self) -> Module:
        module = Module(self.name)
        module.add_global("x", N_CAP)
        module.add_global("coef", 32)
        module.add_global("out", N_CAP)

        func = Function("main", [Reg("n", I64), Reg("deg", I64)], F64)
        module.add_function(func)
        b = IRBuilder(func)
        xp = b.mov(b.global_addr("x"), hint="xp")
        cp = b.mov(b.global_addr("coef"), hint="cp")
        op = b.mov(b.global_addr("out"), hint="op")
        n, deg = func.params

        with b.loop(0, n, hint="feat") as i:  # <- the detected loop
            xv = b.load(b.padd(xp, i))
            acc = b.mov(0.0, hint="acc")
            power = b.mov(1.0, hint="pow")
            with b.loop(0, deg, hint="horner") as k:
                cv = b.load(b.padd(cp, k))
                b.mov(b.fadd(acc, b.fmul(cv, power)), dest=acc)
                b.mov(b.fmul(power, xv), dest=power)
            b.store(acc, b.padd(op, i))
        b.ret(0.0)
        verify_module(module)
        return module

    def make_input(self, rng: random.Random, scale: float = 1.0) -> WorkloadInput:
        n = min(self._dim(160, scale, 16), N_CAP)
        deg = 10
        xs = smooth_series(rng, n, base=0.8, amplitude=0.15, noise_rel=0.02, period=40)
        coef = [rng.uniform(-0.5, 0.5) for _ in range(deg)]
        return WorkloadInput(
            arrays={"x": xs, "coef": coef},
            args=[n, deg],
            output=("out", n),
            loop_output=("out", n),
        )


def main() -> None:
    workload = PolyFeatures()
    harness = Harness(workload, scale=1.0)

    # the compiler's view
    from repro.analysis import detect_target_loops

    module = workload.build()
    for target in detect_target_loops(module.get_function("main"), module):
        print("Detected:", target.describe())

    # performance
    inp = workload.test_inputs(1)[0]
    records = harness.run_all(["SWIFT-R", "AR20", "AR100"], inp)
    base = records["UNSAFE"]
    print(f"\n{'scheme':9s} {'time':>7s} {'instrs':>8s} {'skip':>7s} {'ok':>4s}")
    for scheme in ("SWIFT-R", "AR20", "AR100"):
        rec = records[scheme]
        norm = rec.normalized(base)
        skip = f"{rec.skip_rate:6.1%}" if rec.skip_rate is not None else "     -"
        print(f"{scheme:9s} {norm['time']:6.2f}x {norm['instructions']:7.2f}x {skip} {rec.correct!s:>4s}")

    # reliability
    campaign = run_campaign(
        workload, "AR20", trials=50, scale=1.0,
        profiles=harness.profiles_for(0.2),
    )
    print(f"\nAR20 fault injection: protection rate "
          f"{campaign.protection_rate:.1%} over {campaign.trials} faults "
          f"({campaign.false_negatives} false negatives)")


if __name__ == "__main__":
    main()
