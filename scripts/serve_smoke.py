#!/usr/bin/env python
"""CI smoke of the serve daemon's two headline guarantees.

1. **Dedup**: two identical concurrent ``POST /protect`` requests cost
   exactly one computation (asserted against ``/stats`` counters and the
   per-response ``deduped`` flags).
2. **Crash recovery**: a campaign job SIGKILLed mid-run resumes from its
   checkpoint after a daemon restart and finishes with tallies
   byte-identical to the engine's uninterrupted run.

Stdlib only; exits non-zero with a diagnostic on any violation.  Run as::

    PYTHONPATH=src python scripts/serve_smoke.py
"""
import asyncio
import json
import os
import signal
import subprocess
import sys
import tempfile
import time

SRC = os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
sys.path.insert(0, SRC)

CAMPAIGN = {"workload": "conv1d", "scheme": "UNSAFE", "trials": 400,
            "seed": 3, "scale": 0.35}


def start_daemon(state_dir: str) -> "tuple[subprocess.Popen, str, int]":
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--state-dir", state_dir],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)
    deadline = time.time() + 30
    while True:
        line = proc.stdout.readline()
        if "listening on http://" in line:
            address = line.rsplit("http://", 1)[1].strip()
            host, _, port = address.partition(":")
            return proc, host, int(port)
        if proc.poll() is not None or time.time() > deadline:
            raise SystemExit(f"daemon failed to start: {line!r}")


async def request(host, port, method, path, body=None):
    reader, writer = await asyncio.open_connection(host, port)
    try:
        payload = json.dumps(body).encode() if body is not None else b""
        head = [f"{method} {path} HTTP/1.1", "host: smoke",
                "connection: close"]
        if payload:
            head.append(f"content-length: {len(payload)}")
        writer.write(("\r\n".join(head) + "\r\n\r\n").encode() + payload)
        await writer.drain()
        raw = await reader.read()
    finally:
        writer.close()
        await writer.wait_closed()
    status = int(raw.split(b" ", 2)[1])
    body = raw.split(b"\r\n\r\n", 1)[1]
    return status, json.loads(body) if body.strip() else None


def req(host, port, method, path, body=None):
    return asyncio.run(request(host, port, method, path, body))


def check(condition, message):
    if not condition:
        raise SystemExit(f"serve smoke FAILED: {message}")


def main() -> int:
    state_dir = tempfile.mkdtemp(prefix="repro-serve-smoke-")
    proc, host, port = start_daemon(state_dir)
    try:
        # -- 1: concurrent identical protects dedup to one computation --
        async def two_identical():
            body = {"workload": "blackscholes", "scheme": "AR20"}
            return await asyncio.gather(
                request(host, port, "POST", "/protect", body),
                request(host, port, "POST", "/protect", body))

        (s1, r1), (s2, r2) = asyncio.run(two_identical())
        check(s1 == 200 and s2 == 200, f"protect statuses {s1}/{s2}")
        check(sorted((r1["deduped"], r2["deduped"])) == [False, True],
              f"dedup flags {r1['deduped']}/{r2['deduped']}")
        check(r1["module"] == r2["module"], "deduped modules differ")
        _, stats = req(host, port, "GET", "/stats")
        check(stats["dedup"]["computations"] == 1
              and stats["dedup"]["dedup_hits"] == 1,
              f"dedup counters {stats['dedup']}")
        print("serve smoke: dedup OK (1 computation, 1 dedup hit)")

        # -- 2: launch a campaign, SIGKILL the daemon mid-run ----------
        status, data = req(host, port, "POST", "/campaigns", CAMPAIGN)
        check(status == 202, f"campaign submit status {status}")
        job_id = data["job"]["id"]
        deadline = time.time() + 60
        while True:
            _, data = req(host, port, "GET", f"/campaigns/{job_id}")
            job = data["job"]
            if job["status"] == "running" and job["done_trials"] > 0:
                break
            check(job["status"] in ("queued", "running"),
                  f"job finished before the kill ({job['status']}); "
                  f"raise CAMPAIGN trials")
            check(time.time() < deadline, "job made no progress")
            time.sleep(0.01)
        proc.send_signal(signal.SIGKILL)
        proc.wait()
        print(f"serve smoke: killed daemon at "
              f"{job['done_trials']}/{job['total_trials']} trials")

        # -- 3: restart over the same state dir; job must resume -------
        proc, host, port = start_daemon(state_dir)
        deadline = time.time() + 120
        while True:
            _, data = req(host, port, "GET", f"/campaigns/{job_id}")
            job = data["job"]
            if job["status"] in ("done", "failed"):
                break
            check(time.time() < deadline, "resumed job did not finish")
            time.sleep(0.05)
        check(job["status"] == "done", f"resumed job failed: {job['error']}")
        check(job["restarts"] == 1, f"restarts {job['restarts']}")

        # -- 4: tallies byte-identical to the uninterrupted engine run -
        from repro.eval.campaign_engine import run_campaign_parallel
        from repro.serve.jobs import DEFAULT_JOB_CHUNK
        from repro.workloads import get_workload

        reference = run_campaign_parallel(
            get_workload(CAMPAIGN["workload"]), CAMPAIGN["scheme"],
            trials=CAMPAIGN["trials"], seed=CAMPAIGN["seed"],
            scale=CAMPAIGN["scale"], jobs=1, chunk=DEFAULT_JOB_CHUNK)
        got = json.dumps(job["result"], sort_keys=True)
        want = json.dumps(reference.to_dict(), sort_keys=True)
        check(got == want, f"resumed tallies diverged:\n  {got}\n  {want}")
        print(f"serve smoke: kill/restart resume OK, tallies "
              f"byte-identical ({job['result']['tallies']})")
        return 0
    finally:
        if proc.poll() is None:
            proc.terminate()
            try:
                proc.wait(timeout=10)
            except subprocess.TimeoutExpired:
                proc.kill()


if __name__ == "__main__":
    sys.exit(main())
