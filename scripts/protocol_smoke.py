"""CI smoke for the scheme-protocol layer (make verify).

Two contracts, end to end:

1. **O3 over every registered scheme.**  For each descriptor whose
   protocol declares a verifiable contract, run the fault-metamorphic
   oracle workload-backed (the generated corpus has no protocol target
   loops) and require zero violations with the checker demonstrably
   live (flips landed).
2. **Predictor-vs-fixed CKPT campaigns, serial == batch.**  The
   signal-driven CKPT8 and the pinned CKPT8FIX must both tally
   byte-identically between the reference engine and the batch engine,
   and their clean-run commit traces must differ on a
   prediction-hostile workload — the fault-likelihood signal measurably
   steering checkpoint frequency.
"""
import sys

sys.path.insert(0, "src")

from repro.difftest.oracles import check_fault_metamorphic, o3_descriptor
from repro.eval.fault_campaign import run_campaign
from repro.eval.schemes import prepare
from repro.pipeline.registry import all_descriptors
from repro.runtime import Interpreter
from repro.runtime.backend import set_default_backend
from repro.workloads import get_workload


def o3_all_schemes(workload_name="conv1d", samples=4, seed=1):
    workload = get_workload(workload_name)
    inp = workload.test_inputs(1, seed=3, scale=0.35)[0]
    checked = landed = 0
    for descriptor in all_descriptors():
        if descriptor.protocol.contract == "none":
            continue
        if descriptor.needs_training:
            continue  # AR<k> is statically coverage-checked per commit
        module = workload.build()
        stats = {}
        violations = check_fault_metamorphic(
            module, descriptor.name, samples=samples, seed=seed, stats=stats,
            main_args=inp.args,
            memory_factory=lambda m=module: workload.fresh_memory(m, inp),
        )
        assert not violations, (
            f"{descriptor.name}: O3 violations: {violations}")
        checked += 1
        landed += stats.get("landed", 0)
        verified = o3_descriptor(descriptor.name).name
        suffix = f" (as {verified})" if verified != descriptor.name else ""
        print(f"  O3 {descriptor.name}{suffix}: contract "
              f"{descriptor.protocol.contract}, {stats.get('landed', 0)} "
              f"flips landed, 0 violations")
    assert checked >= 4, f"only {checked} schemes had a verifiable contract"
    assert landed > 0, "no flips landed anywhere: the checker is dead"


def ckpt_campaign_identity(workload_name="conv1d", trials=30, seed=1):
    workload = get_workload(workload_name)
    for scheme in ("CKPT8", "CKPT8FIX"):
        serial = run_campaign(workload, scheme, trials, seed=seed, scale=0.35)
        set_default_backend("batch")
        try:
            batch = run_campaign(workload, scheme, trials, seed=seed,
                                 scale=0.35)
        finally:
            set_default_backend(None)
        assert batch.to_dict() == serial.to_dict(), (
            f"{scheme}: batch campaign diverged from ref")
        print(f"  {scheme}: {trials} trials, serial == batch byte-identical")


def ckpt_signal_responds(workload_name="blackscholes", scale=0.4):
    workload = get_workload(workload_name)
    inp = workload.test_inputs(1, seed=3, scale=scale)[0]
    commits = {}
    for scheme in ("CKPT8", "CKPT8FIX"):
        prepared = prepare(workload, scheme)
        memory = workload.fresh_memory(prepared.module, inp)
        interp = Interpreter(prepared.module, memory=memory)
        interp.register_intrinsics(prepared.intrinsics)
        interp.run(prepared.main, inp.args)
        commits[scheme] = len(prepared.application.runtime.commit_intervals())
    assert commits["CKPT8"] > commits["CKPT8FIX"], (
        f"fault-likelihood signal did not shorten intervals: {commits}")
    print(f"  signal response on {workload_name}: CKPT8 {commits['CKPT8']} "
          f"checkpoints vs CKPT8FIX {commits['CKPT8FIX']}")


def main():
    print("protocol smoke: O3 over all registered schemes")
    o3_all_schemes()
    print("protocol smoke: predictor-vs-fixed CKPT campaigns")
    ckpt_campaign_identity()
    ckpt_signal_responds()
    print("protocol smoke: ok")


if __name__ == "__main__":
    main()
